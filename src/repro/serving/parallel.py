"""Deterministic process pools: chunked mapping and pinned shards.

``parallel_map(func, items, workers=N)`` behaves exactly like
``[func(x) for x in items]`` — same results, same order — but fans the
chunks out over a ``ProcessPoolExecutor``.  Determinism comes from
three choices:

* results are gathered **in submission order**, never completion
  order, so the output list is a positional match for ``items``;
* chunk boundaries cannot influence any result because ``func`` is
  applied per item (chunking only amortises pickling);
* each worker resets its (fork-inherited) metrics registry, collects
  into it alone, and ships a snapshot home; the parent merges the
  snapshots in chunk order via
  :meth:`repro.obs.MetricsRegistry.merge_snapshot`, so counter totals
  equal the serial run exactly.

``workers <= 1`` short-circuits to an inline loop in the parent
process — no pool, no pickling, byte-identical to the serial path —
which is also the fallback the callers use on single-CPU boxes.

``func`` (and every item/result) must be picklable: define workers at
module level, not as closures or lambdas.

:class:`ShardWorkerPool` extends the same determinism discipline to
*stateful* workers.  A ``ProcessPoolExecutor`` cannot pin state to a
specific worker (any worker may pick up any task), so the pool runs
one long-lived ``multiprocessing.Process`` per slot, connected by a
pipe.  Each shard object is explicitly ``pickle.dumps``-ed to its
worker at startup — never smuggled in through a fork snapshot — so
whatever state survives pickling is exactly the state that serves
(the engine's ``__getstate__`` regression tests ride on this).
Replies are received in request order over per-worker FIFO pipes, and
worker metric snapshots are merged in that same order, so results and
counter totals are independent of scheduling.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing.connection import Connection
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from ..obs import OBS

__all__ = ["parallel_map", "ShardWorkerPool"]


def _run_chunk(
    func: Callable[[Any], Any],
    chunk: List[Any],
    collect_obs: bool,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Worker-side chunk evaluation.

    Resets the process-wide registry first: under the ``fork`` start
    method the child inherits whatever the parent had already
    collected, and merging that back would double-count it.
    """
    OBS.reset()
    OBS.enable(collect_obs)
    results = [func(item) for item in chunk]
    snapshot = OBS.snapshot() if collect_obs else {}
    return results, snapshot


def parallel_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int = 1,
    chunk_size: "int | None" = None,
) -> List[Any]:
    """Order-preserving parallel ``[func(x) for x in items]``.

    Parameters
    ----------
    func:
        A picklable (module-level) single-argument callable.
    items:
        The inputs; the returned list is positionally aligned to it.
    workers:
        Process count.  ``<= 1`` runs inline in the calling process.
    chunk_size:
        Items per task; default splits the input into about four
        chunks per worker to amortise pickling while keeping the pool
        busy.
    """
    n = len(items)
    if n == 0:
        return []
    if workers <= 1:
        return [func(item) for item in items]
    if chunk_size is None:
        chunk_size = max(1, -(-n // (workers * 4)))
    chunks = [
        list(items[start:start + chunk_size])
        for start in range(0, n, chunk_size)
    ]
    collect_obs = OBS.enabled
    results: List[Any] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_chunk, func, chunk, collect_obs)
            for chunk in chunks
        ]
        # submission order, not completion order: the output list and
        # the metrics merge must not depend on scheduling.
        for future in futures:
            chunk_results, snapshot = future.result()
            results.extend(chunk_results)
            if collect_obs:
                OBS.merge_snapshot(snapshot)
    return results


# ----------------------------------------------------------------------
# pinned stateful workers (the sharded serving tier's pool)
# ----------------------------------------------------------------------

#: Pool request: ``(kind, shard_id, method, args, collect_obs)``.
_Request = Tuple[str, int, str, Tuple[Any, ...], bool]


def _shard_worker_main(
    conn: Connection, payloads: Dict[int, bytes]
) -> None:
    """One pool worker: unpickle its shards, answer pipe requests.

    The registry is reset up front (a ``fork`` child inherits the
    parent's collected metrics; merging them back would double-count)
    and re-enabled per request according to the parent's flag, so a
    request served while the parent collects contributes exactly its
    own counters and nothing else.

    ``call`` requests reply ``(result, snapshot, error)``; ``cast``
    requests (mutations) do not reply — pipe FIFO ordering guarantees
    any later call observes them — and never collect metrics, because
    the parent applies the same mutation to its own copy and already
    counted it.  A failing request is shipped back as an error string
    instead of killing the worker.
    """
    OBS.reset()
    OBS.disable()
    shards = {
        sid: pickle.loads(blob) for sid, blob in payloads.items()
    }
    collecting = False
    pending_error: "str | None" = None
    while True:
        message: "_Request | None" = conn.recv()
        if message is None:
            break
        kind, sid, method, args, collect = message
        if collect != collecting:
            OBS.reset()
            OBS.enable(collect)
            collecting = collect
        result: Any = None
        error: "str | None" = pending_error
        pending_error = None
        if error is None:
            try:
                result = getattr(shards[sid], method)(*args)
            except Exception as exc:  # noqa: BLE001 — shipped back
                error = f"{type(exc).__name__}: {exc}"
        if kind == "call":
            snapshot = OBS.snapshot() if collecting else None
            if collecting:
                OBS.reset()
                OBS.enable(True)
            conn.send((result, snapshot, error))
        elif error is not None:
            # a failed cast surfaces on the next call
            pending_error = error
    conn.close()


class ShardWorkerPool:
    """Long-lived workers, each pinned to a fixed set of shards.

    Parameters
    ----------
    shards:
        Mapping of shard id → shard object.  Each object is pickled
        to its worker at startup; shard ``i`` (in ascending id order)
        lives on worker ``i % workers`` forever after.
    workers:
        Process count (clamped to the shard count).
    """

    def __init__(
        self, shards: Mapping[int, Any], *, workers: int
    ) -> None:
        ids = sorted(shards)
        if not ids:
            raise ValueError("cannot pool zero shards")
        self.workers = max(1, min(workers, len(ids)))
        self._worker_of = {
            sid: i % self.workers for i, sid in enumerate(ids)
        }
        payloads: List[Dict[int, bytes]] = [
            {} for _ in range(self.workers)
        ]
        for sid in ids:
            payloads[self._worker_of[sid]][sid] = pickle.dumps(
                shards[sid]
            )
        ctx = multiprocessing.get_context()
        self._conns: List[Connection] = []
        self._procs: List[multiprocessing.process.BaseProcess] = []
        for w in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, payloads[w]),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    def worker_of(self, shard_id: int) -> int:
        """Index of the worker pinned to ``shard_id``."""
        return self._worker_of[shard_id]

    def call_many(
        self,
        requests: Sequence[Tuple[int, str, Tuple[Any, ...]]],
    ) -> List[Any]:
        """Run ``(shard_id, method, args)`` requests; ordered results.

        All requests are sent before any reply is read, so workers
        serve disjoint shards concurrently; replies are gathered in
        request order (per-worker pipes are FIFO), and worker metric
        snapshots are merged in that same order — results and counter
        totals match an inline serve exactly.
        """
        if self._conns is None:
            raise RuntimeError("pool is closed")
        collect = OBS.enabled
        for sid, method, args in requests:
            self._conns[self._worker_of[sid]].send(
                ("call", sid, method, tuple(args), collect)
            )
        results: List[Any] = []
        for sid, _method, _args in requests:
            reply = self._conns[self._worker_of[sid]].recv()
            result, snapshot, error = reply
            if error is not None:
                raise RuntimeError(
                    f"shard worker for shard {sid} failed: {error}"
                )
            if collect and snapshot:
                OBS.merge_snapshot(snapshot)
            results.append(result)
        return results

    def call(
        self, shard_id: int, method: str, *args: Any
    ) -> Any:
        """One request to one shard (see :meth:`call_many`)."""
        return self.call_many([(shard_id, method, args)])[0]

    def cast(
        self,
        shard_id: int,
        method: str,
        args: Tuple[Any, ...] = (),
    ) -> None:
        """Fire-and-forget request (mutations).  No reply, no
        metrics: the caller already applied — and counted — the same
        operation on its own copy of the shard."""
        if self._conns is None:
            raise RuntimeError("pool is closed")
        self._conns[self._worker_of[shard_id]].send(
            ("cast", shard_id, method, tuple(args), False)
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release the pipes (idempotent)."""
        if self._conns is None:
            return
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            conn.close()
        self._conns = None  # type: ignore[assignment]
        self._procs = []

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._conns is None else "open"
        return (
            f"ShardWorkerPool(workers={self.workers}, "
            f"shards={len(self._worker_of)}, {state})"
        )

"""Micro-batching: coalesce single queries into engine-sized batches.

The paper's Min-Skew kernel is cheap *per batch row* but the serving
tier pays real Python dispatch cost *per call* — PR 4's vectorised
``estimate_block`` only amortises when queries arrive in blocks.
:class:`MicroBatcher` is the sans-IO coalescing core of the front door
(:mod:`repro.serving.frontdoor`): callers submit one rectangle at a
time and receive a :class:`PendingReply`; the batcher packs the queue
into micro-batches and dispatches each batch through a single
``estimate_batch`` call, fanning the answers back to the right
replies.

Batches fire under a **dual trigger**:

* **size** — a run of queued queries reaches ``max_batch``;
* **logical wait** — the oldest queued query has waited
  ``max_wait_steps`` on the batcher's :class:`~repro.resilience
  .StepClock` (``tick()``), so latency is bounded in deterministic
  step time, never wall-clock time;

plus an explicit :meth:`flush` (the front door calls it when the event
loop goes idle, and on close) that drains everything queued.

**Ordering.**  The queue is strictly FIFO and a mutation is a
*barrier*: queries queued before it are dispatched before it applies,
queries queued after it are answered by the post-mutation summary.
Because the engine revalidates epochs before every batch, this gives
the same answers as a sequential reference serving the identical
submission order — the differential property the hypothesis suite
asserts under every trigger interleaving.

**Admission control.**  The queue is bounded (``max_pending``) and
guarded by a :class:`~repro.resilience.CircuitBreaker` fed by dispatch
outcomes; a submit that cannot be admitted raises a typed, retryable
:class:`~repro.errors.OverloadedError` instead of queueing without
bound.  Each reply resolves exactly once — on the error path every
reply of the failed batch carries the dispatch exception.

Counters (``serving.frontdoor.*``): ``submitted``, ``mutations``,
``batches``, ``batched``, ``shed``, ``dispatch_failures``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple, Union

import numpy as np
import numpy.typing as npt

from ..errors import OverloadedError, ValidationError
from ..geometry import Rect
from ..obs import OBS
from ..resilience import CircuitBreaker, StepClock

__all__ = ["PendingReply", "MicroBatcher"]

#: Default micro-batch ceiling: comfortably past the point where the
#: vectorised kernel dominates per-call dispatch.
DEFAULT_MAX_BATCH = 64

#: Default logical latency bound: a queued query never waits more than
#: this many clock steps before a partial batch fires.
DEFAULT_MAX_WAIT_STEPS = 4

#: Default admission bound on queued work.
DEFAULT_MAX_PENDING = 2048

#: A reply that has not resolved yet (sentinel; never exposed).
_UNSET = object()


class PendingReply:
    """A single-resolution future for one submitted operation.

    The batcher guarantees exactly one resolution per reply — a second
    ``set_result``/``set_error`` is a programming error and raises.
    Done-callbacks run synchronously at resolution time (the front
    door uses them to bridge into ``asyncio`` futures).
    """

    __slots__ = ("_value", "_error", "_callbacks")

    def __init__(self) -> None:
        self._value: Any = _UNSET
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["PendingReply"], None]] = []

    @property
    def done(self) -> bool:
        return self._value is not _UNSET or self._error is not None

    def error(self) -> Optional[BaseException]:
        """The resolving exception, or None."""
        return self._error

    def result(self) -> Any:
        """The resolved value; raises the resolving error, or
        :class:`ValidationError` when not yet resolved."""
        if self._error is not None:
            raise self._error
        if self._value is _UNSET:
            raise ValidationError("reply is not resolved yet")
        return self._value

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def set_result(self, value: Any) -> None:
        if self.done:
            raise ValidationError("reply already resolved")
        self._value = value
        self._run_callbacks()

    def set_error(self, exc: BaseException) -> None:
        if self.done:
            raise ValidationError("reply already resolved")
        self._error = exc
        self._run_callbacks()

    def add_done_callback(
        self, callback: Callable[["PendingReply"], None]
    ) -> None:
        """Run ``callback(reply)`` at resolution (immediately if the
        reply is already resolved)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)


class _Query:
    __slots__ = ("coords", "reply", "step")

    def __init__(
        self,
        coords: Tuple[float, float, float, float],
        reply: PendingReply,
        step: int,
    ) -> None:
        self.coords = coords
        self.reply = reply
        self.step = step


class _Mutation:
    __slots__ = ("kind", "rect", "reply", "step")

    def __init__(
        self, kind: str, rect: Rect, reply: PendingReply, step: int
    ) -> None:
        self.kind = kind
        self.rect = rect
        self.reply = reply
        self.step = step


class MicroBatcher:
    """FIFO query coalescer with mutation barriers and admission.

    Parameters
    ----------
    dispatch:
        ``(n, 4) float64 coords -> (n,) float64 values`` — one engine
        batch call (:meth:`BatchServingEngine.estimate_batch` behind a
        :class:`~repro.geometry.RectSet`).
    apply_mutation:
        ``(kind, rect) -> result`` applying one ``"insert"`` or
        ``"delete"``; ``None`` rejects mutations with a typed error.
    max_batch / max_wait_steps / max_pending:
        The dual trigger plus the admission bound.  ``max_wait_steps
        <= 0`` disables the logical-wait trigger (size and flush
        only).
    clock:
        The logical clock the wait trigger is measured on; shared with
        the front door so every frame advances it.
    failure_threshold / reset_after_steps:
        Ingress circuit-breaker knobs (consecutive dispatch failures
        before the door sheds, cooldown steps before a trial batch).
    """

    def __init__(
        self,
        dispatch: Callable[
            ["npt.NDArray[np.float64]"], "npt.NDArray[np.float64]"
        ],
        apply_mutation: Optional[Callable[[str, Rect], Any]] = None,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_steps: int = DEFAULT_MAX_WAIT_STEPS,
        max_pending: int = DEFAULT_MAX_PENDING,
        clock: Optional[StepClock] = None,
        failure_threshold: int = 5,
        reset_after_steps: int = 50,
    ) -> None:
        if max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValidationError("max_pending must be >= 1")
        self._dispatch = dispatch
        self._apply = apply_mutation
        self.max_batch = max_batch
        self.max_wait_steps = max_wait_steps
        self.max_pending = max_pending
        self.clock = clock if clock is not None else StepClock()
        self.breaker = CircuitBreaker(
            self.clock,
            failure_threshold=failure_threshold,
            reset_after_steps=reset_after_steps,
        )
        self._queue: Deque[Union[_Query, _Mutation]] = deque()
        self._queued_mutations = 0
        self.submitted = 0
        self.mutations = 0
        self.batches = 0
        self.batched = 0
        self.shed = 0
        self.dispatch_failures = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Operations queued and not yet dispatched."""
        return len(self._queue)

    def stats(self) -> "dict[str, float]":
        """Lifetime counters plus the derived mean batch size."""
        return {
            "submitted": float(self.submitted),
            "mutations": float(self.mutations),
            "batches": float(self.batches),
            "batched": float(self.batched),
            "shed": float(self.shed),
            "dispatch_failures": float(self.dispatch_failures),
            "pending": float(self.pending),
            "avg_batch": (
                self.batched / self.batches if self.batches else 0.0
            ),
        }

    def _admit(self) -> None:
        if len(self._queue) >= self.max_pending:
            self.shed += 1
            if OBS.enabled:
                OBS.add("serving.frontdoor.shed")
            raise OverloadedError(
                f"front door queue is full "
                f"({self.max_pending} pending operations)",
                hint="retry after a backoff; the tier is draining",
            )
        if not self.breaker.allow():
            self.shed += 1
            if OBS.enabled:
                OBS.add("serving.frontdoor.shed")
            raise OverloadedError(
                "front door circuit breaker is open after repeated "
                "dispatch failures",
                hint="retry after the cooldown",
            )

    # ------------------------------------------------------------------
    def submit(
        self, x1: float, y1: float, x2: float, y2: float
    ) -> PendingReply:
        """Queue one query; may fire a size-triggered batch inline.

        Raises :class:`~repro.errors.OverloadedError` when the request
        cannot be admitted (bounded queue / open breaker) — the shed
        path, so callers translate it into a typed response instead of
        waiting unboundedly.
        """
        self._admit()
        reply = PendingReply()
        self.submitted += 1
        if OBS.enabled:
            OBS.add("serving.frontdoor.submitted")
        self._queue.append(
            _Query((x1, y1, x2, y2), reply, self.clock.now())
        )
        self._pump(force=False)
        return reply

    def submit_mutation(self, kind: str, rect: Rect) -> PendingReply:
        """Queue one mutation barrier (``"insert"`` / ``"delete"``)."""
        if kind not in ("insert", "delete"):
            raise ValidationError(
                f"unknown mutation kind {kind!r}",
                hint="use 'insert' or 'delete'",
            )
        self._admit()
        reply = PendingReply()
        self.mutations += 1
        if OBS.enabled:
            OBS.add("serving.frontdoor.mutations")
        self._queue.append(
            _Mutation(kind, rect, reply, self.clock.now())
        )
        self._queued_mutations += 1
        self._pump(force=False)
        return reply

    def tick(self, steps: int = 1) -> None:
        """Advance logical time; fire any wait-expired partial batch."""
        self.clock.advance(steps)
        self._pump(force=False)

    def flush(self) -> None:
        """Drain everything queued regardless of triggers."""
        self._pump(force=True)

    def close(self) -> None:
        """Flush outstanding work (the flush-on-close trigger)."""
        self.flush()

    # ------------------------------------------------------------------
    def _head_queries(self) -> int:
        """Length of the run of queries at the head of the queue.

        O(1) on the hot path — with no mutation queued (the common
        case under pure query load) the whole queue is the run.
        """
        if not self._queued_mutations:
            return len(self._queue)
        count = 0
        for item in self._queue:
            if not isinstance(item, _Query):
                break
            count += 1
        return count

    def _wait_expired(self) -> bool:
        if self.max_wait_steps <= 0:
            return False
        head = self._queue[0]
        return self.clock.now() - head.step >= self.max_wait_steps

    def _pump(self, *, force: bool) -> None:
        while self._queue:
            head = self._queue[0]
            if isinstance(head, _Mutation):
                self._queue.popleft()
                self._queued_mutations -= 1
                self._apply_one(head)
                continue
            run = self._head_queries()
            if run >= self.max_batch:
                self._fire(self.max_batch)
                continue
            # a mutation behind the run acts as a barrier: the queries
            # ahead of it must dispatch (pre-mutation) before it can
            # apply, so a partial batch fires regardless of triggers
            barrier = run < len(self._queue)
            if force or barrier or self._wait_expired():
                self._fire(run)
                continue
            break

    def _apply_one(self, mutation: _Mutation) -> None:
        if self._apply is None:
            mutation.reply.set_error(ValidationError(
                "this front door serves a read-only engine",
                hint="start it over a mutable tier (ShardRouter or a "
                     "maintained histogram) to accept mutations",
            ))
            return
        try:
            result = self._apply(mutation.kind, mutation.rect)
        except Exception as exc:
            self.breaker.record_failure()
            self.dispatch_failures += 1
            if OBS.enabled:
                OBS.add("serving.frontdoor.dispatch_failures")
            mutation.reply.set_error(exc)
            return
        self.breaker.record_success()
        mutation.reply.set_result(result)

    def _fire(self, n: int) -> None:
        batch = [self._queue.popleft() for _ in range(n)]
        coords = np.array(
            [item.coords for item in batch], dtype=np.float64
        )
        try:
            values = np.asarray(
                self._dispatch(coords), dtype=np.float64
            )
            if values.shape != (n,):
                raise ValidationError(
                    f"dispatch returned shape {values.shape}, "
                    f"expected ({n},)"
                )
        except Exception as exc:
            self.breaker.record_failure()
            self.dispatch_failures += 1
            if OBS.enabled:
                OBS.add("serving.frontdoor.dispatch_failures")
            for item in batch:
                item.reply.set_error(exc)
            return
        self.breaker.record_success()
        self.batches += 1
        self.batched += n
        if OBS.enabled:
            OBS.add("serving.frontdoor.batches")
            OBS.add("serving.frontdoor.batched", n)
        for item, value in zip(batch, values):
            item.reply.set_result(float(value))

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(max_batch={self.max_batch}, "
            f"max_wait_steps={self.max_wait_steps}, "
            f"pending={self.pending}, batches={self.batches})"
        )

"""Scatter-gather routing over a :class:`ShardedHistogram`.

:class:`ShardRouter` is the serving front of the sharded tier.  For a
query batch it

1. refreshes its view of every shard's epoch (counting per-shard
   bumps — the observability hook the invalidation tests assert on);
2. intersects the batch against each shard's *routing box* (the
   inflated-bucket MBR, see :mod:`repro.serving.shard`), skipping
   shards no query can touch;
3. clips each sub-batch to the routing box and fans it out — inline
   for ``workers <= 1``, over the long-lived deterministic
   :class:`~repro.serving.parallel.ShardWorkerPool` otherwise;
4. scatters the partial estimates back, accumulating in shard-id
   order, which keeps the answer bit-identical to the
   :class:`~repro.serving.shard.ShardUnionEstimator` single-engine
   reference.

**Fault tolerance.**  Every fan-out runs under the supervision
policy: the pool bounds each reply wait with a logical deadline (a
dead or wedged worker surfaces as a typed
:class:`~repro.errors.ShardWorkerError` and is respawned, replaying
its write-ahead log); a failed shard dispatch is retried under the
router's :class:`~repro.resilience.RetryPolicy` with deterministic
backoff on the router's step clock; and each shard's consecutive
failures drive its :class:`~repro.serving.supervision.ShardHealth`
quarantine state machine (healthy → suspect → quarantined →
recovering).  A quarantined shard — or one that exhausted its retries
— is served by its **degraded partial**: the shard's ``Uniform@s<id>``
last resort over its routing box, computed parent-side and never
cached.  The batch therefore always completes with a well-defined
answer; the shards that were served degraded are annotated on
:attr:`ShardRouter.degraded_shards` after every serve.  Each shard
dispatch announces the ``serving.worker.s<id>`` fault site, so chaos
plans can fail specific shards deterministically.

Mutations route to the owning shard only; in pooled mode they are also
forwarded to the worker holding that shard (the parent keeps an
authoritative copy for routing boxes and ownership, the worker holds
the serving state — both replay the identical per-shard operation
stream, so the two copies cannot diverge).

Counters (``serving.shard.*``): ``requests``, ``queries``, ``fanout``
(shard dispatches), ``subqueries`` (routed query rows), ``skipped``
(shards not consulted), ``epoch_bumps`` plus per-shard
``epoch_bumps.s<id>``, ``routed_mutations``, and the supervision set:
``failures(.s<id>)``, ``retries``, ``degraded(.s<id>)``,
``health_transitions`` — plus ``serving.pool.respawns`` from the
worker pool underneath.
"""

from __future__ import annotations

from types import TracebackType
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np
import numpy.typing as npt

from ..errors import ReproError
from ..estimators import SelectivityEstimator
from ..geometry import Rect, RectSet, validate_coords_array, \
    validate_extent
from ..obs import OBS
from ..resilience import RetryPolicy, StepClock
from ..resilience.faults import fire
from ..tuning import TuningReport
from .parallel import DEFAULT_POLL_INTERVAL, \
    DEFAULT_REPLY_BUDGET_STEPS, ShardWorkerPool
from .shard import HistogramShard, ShardedHistogram
from .supervision import ShardHealth

__all__ = ["ShardRouter"]

#: One dispatch: the shard plus its method and per-shard arguments.
_Call = Tuple[HistogramShard, str, Tuple[Any, ...]]

#: Placeholder for a dispatch that has produced no outcome yet.
_UNSET = object()


class ShardRouter(SelectivityEstimator):
    """Routes queries and mutations across a sharded histogram.

    Parameters
    ----------
    sharded:
        The shard tier to serve.  The router adopts its ``name`` so
        downstream error tables key identically.
    workers:
        ``<= 1`` serves every shard inline in this process;
        otherwise shards are pickled into a
        :class:`~repro.serving.parallel.ShardWorkerPool` of this many
        long-lived worker processes and sub-batches are fanned out.
    recover:
        Shard id → fresh shard callable handed to the pool for worker
        respawns (:func:`repro.serving.wal.wal_recovery`); ``None``
        re-pickles the parent's authoritative copies.
    retry:
        Per-shard retry policy for retryable dispatch failures.
    budget_steps / poll_interval:
        The pool's logical reply deadline (the fan-out's per-request
        budget) and liveness poll cadence.
    failure_threshold / reset_after_steps:
        Quarantine knobs: consecutive failures before a shard is
        quarantined, and cooldown steps before it may recover.
    """

    def __init__(
        self,
        sharded: ShardedHistogram,
        *,
        workers: int = 1,
        recover: Optional[Any] = None,
        retry: Optional[RetryPolicy] = None,
        budget_steps: Optional[int] = DEFAULT_REPLY_BUDGET_STEPS,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        failure_threshold: int = 3,
        reset_after_steps: int = 25,
    ) -> None:
        self.sharded = sharded
        self.name = sharded.name
        self.workers = max(1, workers)
        self._seen_epochs: Dict[int, int] = {
            s.shard_id: s.epoch for s in sharded.shards
        }
        self._clock = StepClock()
        self._retry = retry if retry is not None else RetryPolicy()
        self._health: Dict[int, ShardHealth] = {
            s.shard_id: ShardHealth(
                s.shard_id, self._clock,
                failure_threshold=failure_threshold,
                reset_after_steps=reset_after_steps,
            )
            for s in sharded.shards
        }
        #: Shard ids served degraded by the most recent serve — the
        #: explicit partial-result annotation of the batch contract.
        self.degraded_shards: Tuple[int, ...] = ()
        self._pool: Optional[ShardWorkerPool] = None
        if self.workers > 1:
            self._pool = ShardWorkerPool(
                {s.shard_id: s for s in sharded.shards},
                workers=self.workers,
                recover=recover,
                budget_steps=budget_steps,
                poll_interval=poll_interval,
            )

    # ------------------------------------------------------------------
    # epoch watching
    # ------------------------------------------------------------------
    def _revalidate(self) -> None:
        """Observe per-shard epochs; refresh stale routing boxes."""
        for shard in self.sharded.shards:
            epoch = shard.epoch
            if epoch != self._seen_epochs[shard.shard_id]:
                self._seen_epochs[shard.shard_id] = epoch
                if OBS.enabled:
                    OBS.add("serving.shard.epoch_bumps")
                    OBS.add(
                        "serving.shard.epoch_bumps"
                        f".s{shard.shard_id}"
                    )
            # recomputed lazily per epoch; calling it here keeps the
            # scatter step allocation-free on the hot path
            shard.routing_box()

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def health(self) -> Dict[int, str]:
        """Current quarantine state of every shard."""
        return {
            sid: health.state
            for sid, health in self._health.items()
        }

    def _inline_call(self, call: _Call) -> Any:
        shard, method, args = call
        try:
            return getattr(shard, method)(*args)
        except ReproError as exc:
            return exc

    def _serve_supervised(
        self, calls: List[_Call]
    ) -> Tuple[List[Any], List[int]]:
        """Serve every dispatch under retry + quarantine.

        Returns per-call outcomes (aligned to ``calls``) and the
        positions that must be served degraded — quarantined shards
        that were never dispatched, plus shards whose retries were
        exhausted.  Healthy outcomes arrive in dispatch order, so the
        bit-for-bit accumulation contract survives supervision.
        """
        outcomes: List[Any] = [_UNSET] * len(calls)
        degraded: List[int] = []
        pending: List[int] = []
        for pos, (shard, _method, _args) in enumerate(calls):
            if self._health[shard.shard_id].allow():
                pending.append(pos)
            else:
                degraded.append(pos)
        attempt = 1
        while pending:
            sendable: List[int] = []
            requests: List[Tuple[int, str, Tuple[Any, ...]]] = []
            for pos in pending:
                shard, method, args = calls[pos]
                try:
                    fire(f"serving.worker.s{shard.shard_id}")
                except ReproError as exc:
                    outcomes[pos] = exc
                    continue
                sendable.append(pos)
                requests.append((shard.shard_id, method, args))
            if self._pool is not None:
                replies = self._pool.try_call_many(requests)
            else:
                replies = [
                    self._inline_call(calls[pos])
                    for pos in sendable
                ]
            for pos, reply in zip(sendable, replies):
                outcomes[pos] = reply
            retry: List[int] = []
            for pos in pending:
                shard = calls[pos][0]
                health = self._health[shard.shard_id]
                outcome = outcomes[pos]
                if isinstance(outcome, ReproError):
                    health.record_failure()
                    if OBS.enabled:
                        OBS.add("serving.shard.failures")
                        OBS.add(
                            "serving.shard.failures"
                            f".s{shard.shard_id}"
                        )
                    if outcome.retryable \
                            and attempt < self._retry.max_attempts \
                            and health.allow():
                        retry.append(pos)
                else:
                    health.record_success()
            if not retry:
                break
            if OBS.enabled:
                OBS.add("serving.shard.retries", len(retry))
            self._clock.advance(self._retry.backoff_for(attempt))
            attempt += 1
            pending = retry
        for pos, outcome in enumerate(outcomes):
            if isinstance(outcome, ReproError):
                degraded.append(pos)
        return outcomes, sorted(set(degraded))

    def _note_degraded(self, shard: HistogramShard) -> None:
        if OBS.enabled:
            OBS.add("serving.shard.degraded")
            OBS.add(f"serving.shard.degraded.s{shard.shard_id}")

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def estimate_batch(
        self, queries: RectSet
    ) -> "npt.NDArray[np.float64]":
        """Scatter-gather batch serve under ``serving.shard.*``."""
        validate_coords_array(queries.coords, what="query")
        if OBS.enabled:
            OBS.add("serving.shard.requests")
            OBS.add("serving.shard.queries", len(queries))
        with OBS.timer("serving.shard.batch"):
            # one step per request: quarantine cooldowns elapse with
            # served traffic, the deterministic notion of time here
            self._clock.advance(1)
            self._revalidate()
            return self._scatter_gather(queries)

    def _scatter_gather(
        self, queries: RectSet
    ) -> "npt.NDArray[np.float64]":
        coords = queries.coords
        result = np.zeros(len(queries), dtype=np.float64)
        dispatch: List[Tuple[
            HistogramShard,
            "npt.NDArray[np.int64]",
            "npt.NDArray[np.float64]",
        ]] = []
        skipped = 0
        for shard in self.sharded.shards:
            box = shard.routing_box()
            if box is None:
                skipped += 1
                continue
            mask = (
                (coords[:, 0] <= box.x2)
                & (coords[:, 2] >= box.x1)
                & (coords[:, 1] <= box.y2)
                & (coords[:, 3] >= box.y1)
            )
            idx = np.flatnonzero(mask).astype(np.int64)
            if idx.size == 0:
                skipped += 1
                continue
            sub = coords[idx]
            clipped = np.empty_like(sub)
            np.maximum(sub[:, 0], box.x1, out=clipped[:, 0])
            np.maximum(sub[:, 1], box.y1, out=clipped[:, 1])
            np.minimum(sub[:, 2], box.x2, out=clipped[:, 2])
            np.minimum(sub[:, 3], box.y2, out=clipped[:, 3])
            dispatch.append((shard, idx, clipped))
        if OBS.enabled:
            OBS.add("serving.shard.fanout", len(dispatch))
            OBS.add("serving.shard.skipped", skipped)
            OBS.add(
                "serving.shard.subqueries",
                sum(int(idx.size) for _, idx, _ in dispatch),
            )
        calls: List[_Call] = [
            (shard, "estimate_batch_coords", (clipped,))
            for shard, _, clipped in dispatch
        ]
        partials, degraded_pos = self._serve_supervised(calls)
        degraded_ids: List[int] = []
        for pos in degraded_pos:
            shard, _, clipped = dispatch[pos]
            partials[pos] = self._degraded_batch_partial(
                shard, clipped
            )
            degraded_ids.append(shard.shard_id)
            self._note_degraded(shard)
        self.degraded_shards = tuple(sorted(degraded_ids))
        # shard-id order: the accumulation order is part of the
        # bit-for-bit contract with ShardUnionEstimator
        for (_, idx, _), partial in zip(dispatch, partials):
            result[idx] += partial
        return result

    def _degraded_batch_partial(
        self,
        shard: HistogramShard,
        clipped: "npt.NDArray[np.float64]",
    ) -> "npt.NDArray[np.float64]":
        """The shard's Uniform last resort over its sub-batch —
        computed parent-side, bypassing (and never populating) any
        cache."""
        est = shard.degraded_estimator()
        if est is None:
            return np.zeros(clipped.shape[0], dtype=np.float64)
        sub = RectSet(clipped, copy=False, validate=False)
        return np.asarray(
            est.estimate_batch(sub), dtype=np.float64
        )

    def estimate(self, query: Rect) -> float:
        """Scalar serve: per-shard engine calls, shard-order sum."""
        validate_extent(
            query.x1, query.y1, query.x2, query.y2, what="query"
        )
        self._clock.advance(1)
        self._revalidate()
        clips: List[Tuple[
            HistogramShard, Tuple[float, float, float, float]
        ]] = []
        skipped = 0
        for shard in self.sharded.shards:
            box = shard.routing_box()
            if box is None or not box.intersects(query):
                skipped += 1
                continue
            clips.append((shard, (
                max(query.x1, box.x1),
                max(query.y1, box.y1),
                min(query.x2, box.x2),
                min(query.y2, box.y2),
            )))
        if OBS.enabled:
            OBS.add("serving.shard.fanout", len(clips))
            OBS.add("serving.shard.skipped", skipped)
            OBS.add("serving.shard.subqueries", len(clips))
        calls: List[_Call] = [
            (shard, "estimate_one", clipped)
            for shard, clipped in clips
        ]
        values, degraded_pos = self._serve_supervised(calls)
        degraded_ids: List[int] = []
        for pos in degraded_pos:
            shard, clipped = clips[pos]
            est = shard.degraded_estimator()
            values[pos] = (
                est.estimate(Rect(*clipped))
                if est is not None else 0.0
            )
            degraded_ids.append(shard.shard_id)
            self._note_degraded(shard)
        self.degraded_shards = tuple(sorted(degraded_ids))
        total = 0.0
        for value in values:
            total += float(value)
        return total

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def insert(self, rect: Rect) -> int:
        """Insert, routed to (and invalidating) one shard only."""
        sid = self.sharded.insert(rect)
        if OBS.enabled:
            OBS.add("serving.shard.routed_mutations")
        if self._pool is not None:
            self._pool.cast(sid, "apply_op", ("insert", rect))
        return sid

    def tune(
        self,
        queries: RectSet,
        *,
        max_ops: int = 2,
        grid_nx: int = 8,
        grid_ny: int = 8,
    ) -> List[Optional[TuningReport]]:
        """One feedback pass per shard, replicated to pool workers.

        The authoritative copies run the tuner
        (:meth:`ShardedHistogram.tune`); in pooled mode each applied
        layout is then shipped to the owning worker via the same
        fire-and-forget channel mutations use, so the worker's
        replica adopts the identical bucket list with its own single
        epoch bump (:meth:`HistogramShard.adopt_buckets`).  A pass
        that found nothing to change casts nothing — the replica's
        epoch only moves when the parent's did.
        """
        reports = self.sharded.tune(
            queries, max_ops=max_ops, grid_nx=grid_nx,
            grid_ny=grid_ny,
        )
        for shard, report in zip(self.sharded.shards, reports):
            if report is None or not report.applied:
                continue
            if OBS.enabled:
                OBS.add("serving.shard.routed_tunes")
            if self._pool is not None:
                self._pool.cast(
                    shard.shard_id, "adopt_buckets",
                    (list(shard.buckets),),
                )
        return reports

    def delete(self, rect: Rect) -> Tuple[int, bool]:
        """Delete via the owning shard; ``(shard id, accepted)``."""
        sid, accepted = self.sharded.delete(rect)
        if OBS.enabled:
            OBS.add("serving.shard.routed_mutations")
        if accepted and self._pool is not None:
            self._pool.cast(sid, "apply_op", ("delete", rect))
        return sid, accepted

    # ------------------------------------------------------------------
    def size_words(self) -> int:
        return self.sharded.size_words()

    def close(self) -> None:
        """Shut the worker pool down (no-op when serving inline)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = (
            f"pool={self.workers}" if self._pool is not None
            else "inline"
        )
        return (
            f"ShardRouter({self.name!r}, "
            f"n_shards={self.sharded.n_shards}, {mode})"
        )

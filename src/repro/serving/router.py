"""Scatter-gather routing over a :class:`ShardedHistogram`.

:class:`ShardRouter` is the serving front of the sharded tier.  For a
query batch it

1. refreshes its view of every shard's epoch (counting per-shard
   bumps — the observability hook the invalidation tests assert on);
2. intersects the batch against each shard's *routing box* (the
   inflated-bucket MBR, see :mod:`repro.serving.shard`), skipping
   shards no query can touch;
3. clips each sub-batch to the routing box and fans it out — inline
   for ``workers <= 1``, over the long-lived deterministic
   :class:`~repro.serving.parallel.ShardWorkerPool` otherwise;
4. scatters the partial estimates back, accumulating in shard-id
   order, which keeps the answer bit-identical to the
   :class:`~repro.serving.shard.ShardUnionEstimator` single-engine
   reference.

Mutations route to the owning shard only; in pooled mode they are also
forwarded to the worker holding that shard (the parent keeps an
authoritative copy for routing boxes and ownership, the worker holds
the serving state — both replay the identical per-shard operation
stream, so the two copies cannot diverge).

Counters (``serving.shard.*``): ``requests``, ``queries``, ``fanout``
(shard dispatches), ``subqueries`` (routed query rows), ``skipped``
(shards not consulted), ``epoch_bumps`` plus per-shard
``epoch_bumps.s<id>``, and ``routed_mutations``.
"""

from __future__ import annotations

from types import TracebackType
from typing import Dict, List, Optional, Tuple, Type

import numpy as np
import numpy.typing as npt

from ..estimators import SelectivityEstimator
from ..geometry import Rect, RectSet, validate_coords_array, \
    validate_extent
from ..obs import OBS
from .parallel import ShardWorkerPool
from .shard import HistogramShard, ShardedHistogram

__all__ = ["ShardRouter"]


class ShardRouter(SelectivityEstimator):
    """Routes queries and mutations across a sharded histogram.

    Parameters
    ----------
    sharded:
        The shard tier to serve.  The router adopts its ``name`` so
        downstream error tables key identically.
    workers:
        ``<= 1`` serves every shard inline in this process;
        otherwise shards are pickled into a
        :class:`~repro.serving.parallel.ShardWorkerPool` of this many
        long-lived worker processes and sub-batches are fanned out.
    """

    def __init__(
        self,
        sharded: ShardedHistogram,
        *,
        workers: int = 1,
    ) -> None:
        self.sharded = sharded
        self.name = sharded.name
        self.workers = max(1, workers)
        self._seen_epochs: Dict[int, int] = {
            s.shard_id: s.epoch for s in sharded.shards
        }
        self._pool: Optional[ShardWorkerPool] = None
        if self.workers > 1:
            self._pool = ShardWorkerPool(
                {s.shard_id: s for s in sharded.shards},
                workers=self.workers,
            )

    # ------------------------------------------------------------------
    # epoch watching
    # ------------------------------------------------------------------
    def _revalidate(self) -> None:
        """Observe per-shard epochs; refresh stale routing boxes."""
        for shard in self.sharded.shards:
            epoch = shard.epoch
            if epoch != self._seen_epochs[shard.shard_id]:
                self._seen_epochs[shard.shard_id] = epoch
                if OBS.enabled:
                    OBS.add("serving.shard.epoch_bumps")
                    OBS.add(
                        "serving.shard.epoch_bumps"
                        f".s{shard.shard_id}"
                    )
            # recomputed lazily per epoch; calling it here keeps the
            # scatter step allocation-free on the hot path
            shard.routing_box()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def estimate_batch(
        self, queries: RectSet
    ) -> "npt.NDArray[np.float64]":
        """Scatter-gather batch serve under ``serving.shard.*``."""
        validate_coords_array(queries.coords, what="query")
        if OBS.enabled:
            OBS.add("serving.shard.requests")
            OBS.add("serving.shard.queries", len(queries))
        with OBS.timer("serving.shard.batch"):
            self._revalidate()
            return self._scatter_gather(queries)

    def _scatter_gather(
        self, queries: RectSet
    ) -> "npt.NDArray[np.float64]":
        coords = queries.coords
        result = np.zeros(len(queries), dtype=np.float64)
        dispatch: List[Tuple[
            HistogramShard,
            "npt.NDArray[np.int64]",
            "npt.NDArray[np.float64]",
        ]] = []
        skipped = 0
        for shard in self.sharded.shards:
            box = shard.routing_box()
            if box is None:
                skipped += 1
                continue
            mask = (
                (coords[:, 0] <= box.x2)
                & (coords[:, 2] >= box.x1)
                & (coords[:, 1] <= box.y2)
                & (coords[:, 3] >= box.y1)
            )
            idx = np.flatnonzero(mask).astype(np.int64)
            if idx.size == 0:
                skipped += 1
                continue
            sub = coords[idx]
            clipped = np.empty_like(sub)
            np.maximum(sub[:, 0], box.x1, out=clipped[:, 0])
            np.maximum(sub[:, 1], box.y1, out=clipped[:, 1])
            np.minimum(sub[:, 2], box.x2, out=clipped[:, 2])
            np.minimum(sub[:, 3], box.y2, out=clipped[:, 3])
            dispatch.append((shard, idx, clipped))
        if OBS.enabled:
            OBS.add("serving.shard.fanout", len(dispatch))
            OBS.add("serving.shard.skipped", skipped)
            OBS.add(
                "serving.shard.subqueries",
                sum(int(idx.size) for _, idx, _ in dispatch),
            )
        if self._pool is not None:
            partials = self._pool.call_many([
                (
                    shard.shard_id,
                    "estimate_batch_coords",
                    (clipped,),
                )
                for shard, _, clipped in dispatch
            ])
        else:
            partials = [
                shard.estimate_batch_coords(clipped)
                for shard, _, clipped in dispatch
            ]
        # shard-id order: the accumulation order is part of the
        # bit-for-bit contract with ShardUnionEstimator
        for (_, idx, _), partial in zip(dispatch, partials):
            result[idx] += partial
        return result

    def estimate(self, query: Rect) -> float:
        """Scalar serve: per-shard engine calls, shard-order sum."""
        validate_extent(
            query.x1, query.y1, query.x2, query.y2, what="query"
        )
        self._revalidate()
        requests: List[Tuple[
            HistogramShard, Tuple[float, float, float, float]
        ]] = []
        skipped = 0
        for shard in self.sharded.shards:
            box = shard.routing_box()
            if box is None or not box.intersects(query):
                skipped += 1
                continue
            requests.append((shard, (
                max(query.x1, box.x1),
                max(query.y1, box.y1),
                min(query.x2, box.x2),
                min(query.y2, box.y2),
            )))
        if OBS.enabled:
            OBS.add("serving.shard.fanout", len(requests))
            OBS.add("serving.shard.skipped", skipped)
            OBS.add("serving.shard.subqueries", len(requests))
        if self._pool is not None:
            values = self._pool.call_many([
                (shard.shard_id, "estimate_one", clipped)
                for shard, clipped in requests
            ])
        else:
            values = [
                shard.estimate_one(*clipped)
                for shard, clipped in requests
            ]
        total = 0.0
        for value in values:
            total += float(value)
        return total

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def insert(self, rect: Rect) -> int:
        """Insert, routed to (and invalidating) one shard only."""
        sid = self.sharded.insert(rect)
        if OBS.enabled:
            OBS.add("serving.shard.routed_mutations")
        if self._pool is not None:
            self._pool.cast(sid, "apply_op", ("insert", rect))
        return sid

    def delete(self, rect: Rect) -> Tuple[int, bool]:
        """Delete via the owning shard; ``(shard id, accepted)``."""
        sid, accepted = self.sharded.delete(rect)
        if OBS.enabled:
            OBS.add("serving.shard.routed_mutations")
        if accepted and self._pool is not None:
            self._pool.cast(sid, "apply_op", ("delete", rect))
        return sid, accepted

    # ------------------------------------------------------------------
    def size_words(self) -> int:
        return self.sharded.size_words()

    def close(self) -> None:
        """Shut the worker pool down (no-op when serving inline)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = (
            f"pool={self.workers}" if self._pool is not None
            else "inline"
        )
        return (
            f"ShardRouter({self.name!r}, "
            f"n_shards={self.sharded.n_shards}, {mode})"
        )

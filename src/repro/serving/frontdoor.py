"""The asyncio TCP front door: frames in, micro-batched answers out.

This is the ingress layer of the serving tier — the piece that turns
"a process that can answer query batches" into "a server that answers
*clients*".  Protocol: length-prefixed JSON frames (a 4-byte unsigned
big-endian length, then a UTF-8 JSON body) over TCP.  Requests are
objects with an ``id`` (echoed verbatim so clients can pipeline), an
``op`` (``estimate`` / ``insert`` / ``delete`` / ``ping`` /
``stats``), and for the first three a ``rect`` of four numbers.
Responses carry ``{"id", "ok": true, "value": ...}`` or a typed error
``{"id", "ok": false, "error": <class name>, "message", "retryable",
"hint"}``; an estimate answered while shards were served degraded is
annotated with the shard ids (``"degraded": [...]``).

Every connection feeds one shared :class:`~repro.serving.batcher
.MicroBatcher`, so concurrent clients coalesce into the same
micro-batches and one ``estimate_batch`` call serves them all — the
answers are bit-identical to calling the engine directly because the
vectorised kernels evaluate batch rows independently.  The batcher's
logical clock advances once per idle pass of the event loop: a burst
of pipelined frames lands in the same batch (the size trigger), a
partial batch fires after ``max_wait_steps`` idle passes (the logical
wait trigger), and :meth:`FrontDoor.aclose` flushes whatever remains
(the close trigger).  Mutations ride the same queue as barriers, so
the submission order of one connection — and the arrival order across
connections — is exactly the order the tier observes.

Per-query validation runs *before* admission: a NaN or inverted
rectangle fails its own request with a typed
:class:`~repro.errors.GeometryError` and never poisons a batch.
Admission failures surface as :class:`~repro.errors.OverloadedError`
responses (``retryable: true``) — the front door sheds instead of
queueing unboundedly.

Three client-side helpers live here too: :class:`FrontDoorClient`
(asyncio, id-multiplexed, pipelining), :class:`FrontDoorThread` (runs
a server plus client pool on a background event loop, for synchronous
callers — the chaos harness and thread-based tests), and the framing
functions used by both ends.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
import numpy.typing as npt

from .. import errors as _errors
from ..errors import EstimationError, ReproError, ValidationError
from ..estimators import SelectivityEstimator
from ..geometry import Rect, RectSet, validate_extent
from ..obs import OBS
from ..resilience import StepClock
from .batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_PENDING,
    DEFAULT_MAX_WAIT_STEPS,
    MicroBatcher,
    PendingReply,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_frame",
    "FrontDoor",
    "FrontDoorClient",
    "FrontDoorThread",
]

#: Frames above this are refused outright — a single query is tens of
#: bytes, so anything near this bound is a framing error, not a query.
MAX_FRAME_BYTES = 1 << 20

_LEN_BYTES = 4
_READ_CHUNK = 1 << 16


def encode_frame(obj: Any) -> bytes:
    """One wire frame: 4-byte big-endian length + JSON body."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValidationError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return len(body).to_bytes(_LEN_BYTES, "big") + body


def _pop_frame(buffer: bytearray) -> Optional[bytes]:
    """Extract one complete frame body from ``buffer``, or None."""
    if len(buffer) < _LEN_BYTES:
        return None
    length = int.from_bytes(buffer[:_LEN_BYTES], "big")
    if length > MAX_FRAME_BYTES:
        raise ValidationError(
            f"peer announced a {length}-byte frame (bound: "
            f"{MAX_FRAME_BYTES})"
        )
    if len(buffer) < _LEN_BYTES + length:
        return None
    body = bytes(buffer[_LEN_BYTES:_LEN_BYTES + length])
    del buffer[:_LEN_BYTES + length]
    return body


def _error_response(rid: Any, exc: BaseException) -> Dict[str, Any]:
    return {
        "id": rid,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
        "retryable": bool(getattr(exc, "retryable", False)),
        "hint": str(getattr(exc, "hint", "")),
    }


def response_error(response: Dict[str, Any]) -> ReproError:
    """Reconstruct a typed error from an ``ok: false`` response.

    Unknown class names fall back to
    :class:`~repro.errors.EstimationError` so a newer server never
    breaks an older client.
    """
    kind = response.get("error", "EstimationError")
    cls = getattr(_errors, str(kind), EstimationError)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = EstimationError
    message = str(response.get("message", "front door error"))
    hint = str(response.get("hint", "")) or None
    return cls(message, hint=hint)


def _jsonable(value: Any) -> Any:
    """Coerce a mutation result into something JSON can carry."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return repr(value)


def _default_mutate(
    backend: Any,
) -> Optional[Callable[[str, Rect], Any]]:
    """Route mutations to the backend's own insert/delete when it has
    them (a :class:`ShardRouter` does); read-only otherwise."""
    if hasattr(backend, "insert") and hasattr(backend, "delete"):
        def mutate(kind: str, rect: Rect) -> Any:
            if kind == "insert":
                return backend.insert(rect)
            return backend.delete(rect)

        return mutate
    return None


class FrontDoor:
    """The asyncio TCP server around one shared :class:`MicroBatcher`.

    Parameters
    ----------
    engine:
        The batch backend — a
        :class:`~repro.serving.BatchServingEngine`, a
        :class:`~repro.serving.ShardRouter`, or anything else with the
        ``estimate_batch(RectSet)`` contract.
    mutate:
        ``(kind, rect) -> result`` applying one mutation.  Defaults to
        the backend's own ``insert``/``delete`` when present, else the
        door is read-only and mutation requests get a typed error.
    host / port:
        Bind address; port ``0`` picks a free port (read
        :attr:`port` after :meth:`start`).
    max_batch / max_wait_steps / max_pending:
        The batcher's dual trigger and admission bound.
    failure_threshold / reset_after_steps:
        Ingress circuit-breaker knobs.
    """

    def __init__(
        self,
        engine: SelectivityEstimator,
        *,
        mutate: Optional[Callable[[str, Rect], Any]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_steps: int = DEFAULT_MAX_WAIT_STEPS,
        max_pending: int = DEFAULT_MAX_PENDING,
        clock: Optional[StepClock] = None,
        failure_threshold: int = 5,
        reset_after_steps: int = 50,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.clock = clock if clock is not None else StepClock()
        if mutate is None:
            mutate = _default_mutate(engine)
        self.batcher = MicroBatcher(
            self._dispatch,
            mutate,
            max_batch=max_batch,
            max_wait_steps=max_wait_steps,
            max_pending=max_pending,
            clock=self.clock,
            failure_threshold=failure_threshold,
            reset_after_steps=reset_after_steps,
        )
        self._server: Optional["asyncio.AbstractServer"] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._tick_scheduled = False
        self._last_degraded: Tuple[int, ...] = ()
        self.connections = 0

    # ------------------------------------------------------------------
    # dispatch: the one place a batch meets the engine
    # ------------------------------------------------------------------
    def _dispatch(
        self, coords: "npt.NDArray[np.float64]"
    ) -> "npt.NDArray[np.float64]":
        # rows were validated individually at admission, so the batch
        # skips re-validation; bit-identity with a direct engine call
        # holds because the kernels evaluate rows independently
        rects = RectSet(coords, copy=False, validate=False)
        values = np.asarray(
            self.engine.estimate_batch(rects), dtype=np.float64
        )
        degraded = getattr(self.engine, "degraded_shards", ())
        self._last_degraded = tuple(int(s) for s in degraded)
        return values

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FrontDoor":
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = int(sockets[0].getsockname()[1])
        if OBS.enabled:
            OBS.add("serving.frontdoor.started")
        return self

    async def aclose(self) -> None:
        """Stop accepting, flush the batcher (the close trigger).

        Open connections are cancelled and awaited so no handler
        task outlives the door — a stopped server leaves nothing for
        the event loop to destroy mid-read.
        """
        self.batcher.flush()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
        self._conn_tasks.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # per-connection loop
    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        if OBS.enabled:
            OBS.add("serving.frontdoor.connections")
        buffer = bytearray()
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                buffer.extend(chunk)
                while True:
                    try:
                        frame = _pop_frame(buffer)
                    except ValidationError as exc:
                        self._send(writer, _error_response(None, exc))
                        return
                    if frame is None:
                        break
                    self._process(frame, writer)
                self._schedule_tick()
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            # client went away mid-conversation; its queued queries
            # still dispatch with their batch, the writes just no-op
            pass
        except asyncio.CancelledError:
            # door shutdown cancels handlers mid-read; end the task
            # cleanly so the stream protocol's done-callback finds a
            # result, not a cancellation to re-raise
            pass
        finally:
            self.connections -= 1
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):
                # a server shutting down cancels its handler tasks
                # while they drain; that is a clean exit, not an error
                pass

    def _process(
        self, payload: bytes, writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            msg = json.loads(payload)
        except ValueError:
            self._send(writer, _error_response(
                None, ValidationError(
                    "frame body is not valid JSON",
                    hint="send length-prefixed JSON objects",
                )
            ))
            return
        if not isinstance(msg, dict):
            self._send(writer, _error_response(
                None, ValidationError("frame body must be an object")
            ))
            return
        rid = msg.get("id")
        op = msg.get("op")
        if op == "estimate":
            self._process_estimate(rid, msg, writer)
        elif op in ("insert", "delete"):
            self._process_mutation(rid, str(op), msg, writer)
        elif op == "ping":
            self._send(writer, {"id": rid, "ok": True, "value": "pong"})
        elif op == "stats":
            stats = dict(self.batcher.stats())
            stats["connections"] = float(self.connections)
            self._send(writer, {"id": rid, "ok": True, "value": stats})
        else:
            self._send(writer, _error_response(rid, ValidationError(
                f"unknown op {op!r}",
                hint="use estimate, insert, delete, ping, or stats",
            )))

    def _parse_rect(
        self, msg: Dict[str, Any]
    ) -> Tuple[float, float, float, float]:
        rect = msg.get("rect")
        if not isinstance(rect, (list, tuple)) or len(rect) != 4:
            raise ValidationError(
                "rect must be a list of four numbers [x1, y1, x2, y2]"
            )
        try:
            x1, y1, x2, y2 = (float(v) for v in rect)
        except (TypeError, ValueError):
            raise ValidationError(
                "rect coordinates must be numbers"
            ) from None
        # per-query validation at admission: a bad rectangle fails its
        # own request and never reaches the shared batch
        validate_extent(x1, y1, x2, y2, what="query")
        return x1, y1, x2, y2

    def _process_estimate(
        self, rid: Any, msg: Dict[str, Any],
        writer: "asyncio.StreamWriter",
    ) -> None:
        try:
            x1, y1, x2, y2 = self._parse_rect(msg)
            reply = self.batcher.submit(x1, y1, x2, y2)
        except ReproError as exc:
            self._send(writer, _error_response(rid, exc))
            return

        def on_done(done: PendingReply) -> None:
            error = done.error()
            if error is not None:
                self._send(writer, _error_response(rid, error))
                return
            response: Dict[str, Any] = {
                "id": rid, "ok": True, "value": done.result(),
            }
            if self._last_degraded:
                response["degraded"] = list(self._last_degraded)
            self._send(writer, response)

        reply.add_done_callback(on_done)

    def _process_mutation(
        self, rid: Any, kind: str, msg: Dict[str, Any],
        writer: "asyncio.StreamWriter",
    ) -> None:
        try:
            x1, y1, x2, y2 = self._parse_rect(msg)
            reply = self.batcher.submit_mutation(
                kind, Rect(x1, y1, x2, y2)
            )
        except ReproError as exc:
            self._send(writer, _error_response(rid, exc))
            return

        def on_done(done: PendingReply) -> None:
            error = done.error()
            if error is not None:
                self._send(writer, _error_response(rid, error))
                return
            self._send(writer, {
                "id": rid, "ok": True,
                "value": _jsonable(done.result()),
            })

        reply.add_done_callback(on_done)

    def _send(
        self, writer: "asyncio.StreamWriter", obj: Dict[str, Any]
    ) -> None:
        if writer.is_closing():
            return
        try:
            writer.write(encode_frame(obj))
        except (ConnectionError, RuntimeError, OSError):
            # disconnect mid-batch: the answer is simply dropped
            pass

    # ------------------------------------------------------------------
    # logical time: one step per idle pass of the event loop
    # ------------------------------------------------------------------
    def _schedule_tick(self) -> None:
        """Arrange one batcher tick after the loop drains its ready
        callbacks.  Frames arriving in the same pass therefore land in
        the same batch; a partial batch fires once ``max_wait_steps``
        idle passes have elapsed with no size trigger."""
        if self._tick_scheduled or self.batcher.pending == 0:
            return
        self._tick_scheduled = True
        asyncio.get_running_loop().call_soon(self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        self.batcher.tick(1)
        if self.batcher.pending:
            self._schedule_tick()

    def __repr__(self) -> str:
        return (
            f"FrontDoor({self.engine!r}, {self.host}:{self.port}, "
            f"max_batch={self.batcher.max_batch})"
        )


class FrontDoorClient:
    """Pipelining asyncio client: requests multiplexed by ``id``."""

    def __init__(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._next_id = 0
        self._read_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int
    ) -> "FrontDoorClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        buffer = bytearray()
        try:
            while True:
                chunk = await self._reader.read(_READ_CHUNK)
                if not chunk:
                    break
                buffer.extend(chunk)
                while True:
                    frame = _pop_frame(buffer)
                    if frame is None:
                        break
                    msg = json.loads(frame)
                    rid = msg.get("id")
                    future = self._pending.pop(rid, None)
                    if future is not None and not future.done():
                        future.set_result(msg)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            pending = list(self._pending.values())
            self._pending.clear()
            for future in pending:
                if not future.done():
                    future.set_exception(ConnectionError(
                        "front door connection closed"
                    ))

    async def call(
        self,
        op: str,
        *,
        rect: Optional[Sequence[float]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One request/response round trip; returns the raw response.

        Concurrent calls pipeline on the same connection.  ``timeout``
        bounds the wall-clock wait (the client-side hang guard the
        chaos suite relies on).
        """
        rid = self._next_id
        self._next_id += 1
        msg: Dict[str, Any] = {"id": rid, "op": op}
        if rect is not None:
            msg["rect"] = [float(v) for v in rect]
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._pending[rid] = future
        self._writer.write(encode_frame(msg))
        await self._writer.drain()
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(rid, None)

    async def estimate(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        timeout: Optional[float] = None,
    ) -> float:
        """One query; raises the reconstructed typed error on
        ``ok: false``."""
        response = await self.call(
            "estimate", rect=(x1, y1, x2, y2), timeout=timeout
        )
        if not response.get("ok", False):
            raise response_error(response)
        return float(response["value"])

    async def mutate(
        self,
        kind: str,
        rect: Sequence[float],
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        response = await self.call(kind, rect=rect, timeout=timeout)
        if not response.get("ok", False):
            raise response_error(response)
        return response

    async def aclose(self) -> None:
        self._read_task.cancel()
        try:
            await self._read_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class FrontDoorThread:
    """A front door on a background event loop, driven synchronously.

    The server's backend lives entirely on the loop thread once
    :meth:`start` returns — callers interact only through blocking
    wrappers that post work onto the loop, so mutation ordering and
    batch dispatch stay single-threaded.  Used by the chaos harness
    (`chaos --kill-shard-workers --through-server`) and by tests that
    need a real server without an async test framework.
    """

    def __init__(
        self,
        engine: SelectivityEstimator,
        *,
        mutate: Optional[Callable[[str, Rect], Any]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_steps: int = DEFAULT_MAX_WAIT_STEPS,
        max_pending: int = DEFAULT_MAX_PENDING,
        failure_threshold: int = 5,
        reset_after_steps: int = 50,
    ) -> None:
        self.door = FrontDoor(
            engine,
            mutate=mutate,
            host=host,
            port=port,
            max_batch=max_batch,
            max_wait_steps=max_wait_steps,
            max_pending=max_pending,
            failure_threshold=failure_threshold,
            reset_after_steps=reset_after_steps,
        )
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._client: Optional[FrontDoorClient] = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.door.host

    @property
    def port(self) -> int:
        return self.door.port

    def start(self) -> "FrontDoorThread":
        self._thread = threading.Thread(
            target=self._run, name="front-door", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise EstimationError("front door failed to start in time")
        if self._start_error is not None:
            raise EstimationError(
                f"front door failed to start: {self._start_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.door.start())
        except BaseException as exc:
            self._start_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.door.aclose())
        finally:
            loop.close()

    def _submit(
        self, coro: Any, timeout: Optional[float]
    ) -> Any:
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def _shared_client(self) -> FrontDoorClient:
        if self._client is None:
            self._client = self._submit(
                FrontDoorClient.connect(self.host, self.port), 10.0
            )
        return self._client

    # ------------------------------------------------------------------
    # blocking wrappers
    # ------------------------------------------------------------------
    def call(
        self,
        op: str,
        rect: Optional[Sequence[float]] = None,
        *,
        timeout: float = 30.0,
    ) -> Dict[str, Any]:
        client = self._shared_client()
        return dict(self._submit(
            client.call(op, rect=rect, timeout=timeout),
            timeout + 5.0,
        ))

    def estimate(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        timeout: float = 30.0,
    ) -> float:
        client = self._shared_client()
        return float(self._submit(
            client.estimate(x1, y1, x2, y2, timeout=timeout),
            timeout + 5.0,
        ))

    def mutate(
        self,
        kind: str,
        rect: Sequence[float],
        *,
        timeout: float = 30.0,
    ) -> Dict[str, Any]:
        client = self._shared_client()
        return dict(self._submit(
            client.mutate(kind, rect, timeout=timeout),
            timeout + 5.0,
        ))

    def stats(self, *, timeout: float = 30.0) -> Dict[str, Any]:
        response = self.call("stats", timeout=timeout)
        value = response.get("value", {})
        return dict(value) if isinstance(value, dict) else {}

    def estimate_many(
        self,
        coords: "npt.NDArray[np.float64]",
        *,
        concurrency: int = 8,
        timeout: float = 30.0,
    ) -> List[Dict[str, Any]]:
        """Serve every row concurrently over ``concurrency``
        pipelined connections; one response dict per row, in row
        order.  A request that exceeds ``timeout`` yields a synthetic
        ``{"ok": false, "error": "TimeoutError"}`` response instead of
        hanging the caller — the "never a hang past the deadline"
        contract the chaos suite asserts.
        """
        return list(self._submit(
            self._many(np.asarray(coords, dtype=np.float64),
                       concurrency, timeout),
            timeout * 2 + 30.0,
        ))

    async def _many(
        self,
        coords: "npt.NDArray[np.float64]",
        concurrency: int,
        timeout: float,
    ) -> List[Dict[str, Any]]:
        n = int(coords.shape[0])
        responses: List[Dict[str, Any]] = [{} for _ in range(n)]
        if n == 0:
            return responses
        n_clients = max(1, min(concurrency, n))
        clients = [
            await FrontDoorClient.connect(self.host, self.port)
            for _ in range(n_clients)
        ]

        async def worker(
            client: FrontDoorClient, rows: "npt.NDArray[np.int64]"
        ) -> None:
            for i in rows:
                rect = [float(v) for v in coords[int(i)]]
                try:
                    responses[int(i)] = await client.call(
                        "estimate", rect=rect, timeout=timeout
                    )
                except asyncio.TimeoutError:
                    responses[int(i)] = {
                        "ok": False,
                        "error": "TimeoutError",
                        "message": f"no response within {timeout}s",
                        "retryable": True,
                        "hint": "",
                    }
                except (ConnectionError, OSError) as exc:
                    responses[int(i)] = {
                        "ok": False,
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "retryable": True,
                        "hint": "",
                    }

        slices = np.array_split(
            np.arange(n, dtype=np.int64), n_clients
        )
        try:
            await asyncio.gather(*(
                worker(client, rows)
                for client, rows in zip(clients, slices)
            ))
        finally:
            for client in clients:
                await client.aclose()
        return responses

    def stop(self) -> None:
        """Close the client, flush the door, stop the loop thread."""
        if self._loop is None:
            return
        if self._client is not None:
            try:
                self._submit(self._client.aclose(), 10.0)
            except Exception:
                pass
            self._client = None
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "FrontDoorThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

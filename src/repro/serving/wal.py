"""Per-shard write-ahead logging and checkpoint replay.

The sharded serving tier keeps two copies of every shard: the parent's
authoritative copy (routing boxes, ownership, mutation source of
truth) and the worker's serving copy.  When a worker process dies, the
pool respawns it — but the replacement must hold a shard whose epoch
and bucket statistics are **bit-identical** to the pre-crash state.
Re-partitioning the raw data cannot deliver that: bucket statistics
drift incrementally under inserts and deletes, so a fresh build is an
epoch-0 summary, not the drifted one the crashed worker served.

:class:`ShardWAL` makes recovery exact instead.  The parent's shard
records every applied mutation as one atomic checksummed envelope
(:func:`repro.storage.persist.write_artifact` — a SIGKILL mid-write
leaves either the previous log or the new record, never a torn one),
and periodically folds the log into a checkpoint capturing the full
mutable state of the shard (bucket rows, raw data rows, epoch,
drift counters).  Recovery restores the last checkpoint and replays
the log tail through the ordinary mutation entry points, so every
derived decision (bucket targeting, drift-triggered refreshes) is
re-made deterministically and the recovered shard digests equal to
the parent's copy.

Only the parent writes the log: worker copies drop their WAL handle at
the pickle boundary (``HistogramShard.__getstate__``), so a mutation is
journaled exactly once no matter how many processes replay it.

Counters: ``serving.wal.records``, ``serving.wal.checkpoints``,
``serving.wal.recoveries``, ``serving.wal.replayed``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, \
    Union

from ..errors import ArtifactCorruptError
from ..geometry import Rect
from ..obs import OBS
from ..storage.persist import read_artifact, write_artifact

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .shard import HistogramShard, ShardedHistogram

__all__ = ["ShardWAL", "attach_wals", "wal_recovery"]

PathLike = Union[str, Path]

_CHECKPOINT_KIND = "shard-checkpoint"
_RECORD_KIND = "shard-wal"

#: Default mutation count between checkpoints.  Small enough that a
#: replay is cheap, large enough that checkpointing does not dominate
#: the mutation path.
DEFAULT_CHECKPOINT_EVERY = 32


class ShardWAL:
    """Write-ahead log + checkpoint store for one shard.

    Parameters
    ----------
    directory:
        Root directory of the tier's logs; this shard's files live in
        ``<directory>/s<shard_id>/``.
    shard_id:
        The shard the log belongs to.
    checkpoint_every:
        Mutations between automatic checkpoints
        (:meth:`maybe_checkpoint`).
    """

    def __init__(
        self,
        directory: PathLike,
        shard_id: int,
        *,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        self.shard_id = shard_id
        self.directory = Path(directory) / f"s{shard_id}"
        self.checkpoint_every = checkpoint_every
        self._seq = 0
        self._since_checkpoint = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        # Resume a pre-existing log: the next record follows the
        # highest sequence number on disk (checkpoint or record).
        checkpoint = self._read_checkpoint()
        if checkpoint is not None:
            self._seq = int(checkpoint["seq"])
        for seq, _path in self._record_files():
            self._seq = max(self._seq, seq)
            self._since_checkpoint += 1

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> Path:
        return self.directory / "checkpoint.json"

    def _record_path(self, seq: int) -> Path:
        return self.directory / f"op-{seq:08d}.json"

    def _record_files(self) -> List[Any]:
        files = []
        for path in sorted(self.directory.glob("op-*.json")):
            try:
                seq = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            files.append((seq, path))
        files.sort()
        return files

    def _read_checkpoint(self) -> Optional[Dict[str, Any]]:
        if not self.checkpoint_path.exists():
            return None
        payload = read_artifact(
            self.checkpoint_path, kind=_CHECKPOINT_KIND
        )
        if not isinstance(payload, dict) or "seq" not in payload:
            raise ArtifactCorruptError(
                f"malformed shard checkpoint {self.checkpoint_path}",
                hint="delete the shard's WAL directory and "
                     "re-checkpoint from the live shard",
            )
        return payload

    # ------------------------------------------------------------------
    # the write path (parent-side only)
    # ------------------------------------------------------------------
    def record(self, kind: str, rect: Rect) -> int:
        """Journal one applied mutation; returns its sequence number.

        Must be called *after* the shard applied the mutation (the log
        holds accepted operations only, so replay never has to guess
        whether a delete hit).
        """
        self._seq += 1
        write_artifact(
            self._record_path(self._seq),
            {
                "seq": self._seq,
                "op": kind,
                "rect": [rect.x1, rect.y1, rect.x2, rect.y2],
            },
            kind=_RECORD_KIND,
        )
        self._since_checkpoint += 1
        OBS.add("serving.wal.records")
        return self._seq

    def maybe_checkpoint(self, shard: "HistogramShard") -> bool:
        """Checkpoint when the log tail reached ``checkpoint_every``."""
        if self._since_checkpoint < self.checkpoint_every:
            return False
        self.checkpoint(shard)
        return True

    def checkpoint(self, shard: "HistogramShard") -> None:
        """Fold the shard's current state into the checkpoint file and
        truncate the journaled records it covers."""
        state = shard.snapshot_state()
        state["seq"] = self._seq
        write_artifact(
            self.checkpoint_path, state, kind=_CHECKPOINT_KIND
        )
        for seq, path in self._record_files():
            if seq <= self._seq:
                path.unlink(missing_ok=True)
        self._since_checkpoint = 0
        OBS.add("serving.wal.checkpoints")

    # ------------------------------------------------------------------
    # the recovery path
    # ------------------------------------------------------------------
    def replayable_ops(self) -> int:
        """Journal records past the last checkpoint (replay length)."""
        checkpoint = self._read_checkpoint()
        base = int(checkpoint["seq"]) if checkpoint is not None else 0
        return sum(1 for seq, _ in self._record_files() if seq > base)

    def recover(self, shard: "HistogramShard") -> int:
        """Rebuild ``shard`` from the last checkpoint plus the log.

        Restores the checkpointed state verbatim, then replays the log
        tail through :meth:`~repro.serving.shard.HistogramShard.apply_op`
        in sequence order — the recovered shard's epoch and buckets are
        bit-identical to the copy the state was journaled from.
        Returns the number of replayed operations.
        """
        checkpoint = self._read_checkpoint()
        base = 0
        if checkpoint is not None:
            base = int(checkpoint["seq"])
            shard.restore_state(checkpoint)
        replayed = 0
        for seq, path in self._record_files():
            if seq <= base:
                continue
            payload = read_artifact(path, kind=_RECORD_KIND)
            rect = Rect(*(float(v) for v in payload["rect"]))
            shard.apply_op(str(payload["op"]), rect)
            replayed += 1
        OBS.add("serving.wal.recoveries")
        OBS.add("serving.wal.replayed", replayed)
        return replayed

    def __repr__(self) -> str:
        return (
            f"ShardWAL(shard={self.shard_id}, seq={self._seq}, "
            f"tail={self._since_checkpoint})"
        )


def attach_wals(
    sharded: "ShardedHistogram",
    directory: PathLike,
    *,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
) -> Dict[int, ShardWAL]:
    """Give every shard of a tier a WAL rooted at ``directory``.

    Each shard is checkpointed immediately, so recovery is well-defined
    before the first mutation ever lands.
    """
    wals: Dict[int, ShardWAL] = {}
    for shard in sharded.shards:
        wal = ShardWAL(
            directory, shard.shard_id,
            checkpoint_every=checkpoint_every,
        )
        wal.checkpoint(shard)
        shard.attach_wal(wal)
        wals[shard.shard_id] = wal
    return wals


def wal_recovery(
    sharded: "ShardedHistogram",
    wals: Union[PathLike, Dict[int, ShardWAL]],
) -> Callable[[int], "HistogramShard"]:
    """Recovery callable for :class:`~repro.serving.ShardWorkerPool`.

    Maps a shard id to a fresh shard rebuilt from its checkpoint and
    log tail (never from the parent's in-memory copy — the recovered
    state is what crash recovery would actually see).  The returned
    shard carries no WAL handle, so pickling it to a worker cannot
    double-journal.

    ``wals`` is either the handle dict from :func:`attach_wals` or the
    log root directory itself; the directory form opens each shard's
    log fresh at recovery time, which is what a restarted process (no
    live handles) has to work with.
    """
    index = {shard.shard_id: shard for shard in sharded.shards}

    def open_wal(shard_id: int) -> ShardWAL:
        if isinstance(wals, dict):
            return wals[shard_id]
        return ShardWAL(wals, shard_id)

    def recover(shard_id: int) -> "HistogramShard":
        fresh = index[shard_id].clone_unbuilt()
        open_wal(shard_id).recover(fresh)
        return fresh

    return recover

"""Per-shard health for the scatter-gather router.

:class:`ShardHealth` maps the router's view of one shard onto the
quarantine state machine

    healthy → suspect → quarantined → recovering → healthy

backed by a :class:`~repro.resilience.CircuitBreaker` on the router's
logical clock, so every transition is a deterministic function of the
recorded successes/failures and elapsed steps — no wall time:

* **healthy**: no consecutive failures; the shard serves normally.
* **suspect**: at least one recent failure, breaker still closed; the
  shard keeps serving (retries may still rescue it).
* **quarantined**: the breaker opened (``failure_threshold``
  consecutive failures); the router stops dispatching to the shard
  entirely and serves its partial degraded (the shard's
  ``Uniform@s<id>`` last resort, never cached).
* **recovering**: the breaker's cooldown elapsed (half-open); the next
  serve is a trial — success closes the loop back to healthy, failure
  re-quarantines.

Event-driven transitions (a recorded success or failure changing the
state) are counted under ``serving.shard.health_transitions`` and
``serving.shard.health.s<id>.<state>``; the quarantined→recovering
edge is clock-driven (it happens by cooldown expiry, observed on the
next :attr:`state` read) and is therefore visible in the state, not
the counters.
"""

from __future__ import annotations

from ..obs import OBS
from ..resilience import CircuitBreaker, StepClock

__all__ = ["ShardHealth", "HEALTH_STATES"]

#: The quarantine state machine's states, in escalation order.
HEALTH_STATES = (
    "healthy", "suspect", "quarantined", "recovering",
)


class ShardHealth:
    """Quarantine state machine for one shard."""

    __slots__ = ("shard_id", "breaker", "_failures", "_last_state")

    def __init__(
        self,
        shard_id: int,
        clock: StepClock,
        *,
        failure_threshold: int = 3,
        reset_after_steps: int = 25,
    ) -> None:
        self.shard_id = shard_id
        self.breaker = CircuitBreaker(
            clock,
            failure_threshold=failure_threshold,
            reset_after_steps=reset_after_steps,
        )
        self._failures = 0
        self._last_state = "healthy"

    @property
    def state(self) -> str:
        """One of :data:`HEALTH_STATES`."""
        breaker = self.breaker.state
        if breaker == "open":
            return "quarantined"
        if breaker == "half-open":
            return "recovering"
        return "suspect" if self._failures > 0 else "healthy"

    def allow(self) -> bool:
        """Whether the router may dispatch to the shard right now."""
        return self.breaker.allow()

    def record_success(self) -> None:
        self._failures = 0
        self.breaker.record_success()
        self._note_transition()

    def record_failure(self) -> None:
        self._failures += 1
        self.breaker.record_failure()
        self._note_transition()

    def _note_transition(self) -> None:
        state = self.state
        if state != self._last_state:
            if OBS.enabled:
                OBS.add("serving.shard.health_transitions")
                OBS.add(
                    f"serving.shard.health.s{self.shard_id}.{state}"
                )
            self._last_state = state

    def __repr__(self) -> str:
        return (
            f"ShardHealth(s{self.shard_id}, {self.state}, "
            f"failures={self._failures})"
        )

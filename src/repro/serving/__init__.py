"""Batch query serving: the production-path layer over the estimators.

The paper's estimators answer one query at a time; a serving system
answers *workloads*.  This package provides the pieces that make that
fast without changing a single answer:

* :class:`QueryCache` — an LRU result cache keyed by canonicalised
  query rectangles, with hit/miss/eviction counters under
  ``serving.cache.*``;
* :class:`BucketIndex` — a uniform integral-grid over (inflated)
  bucket MBRs, falling back to an R*-tree of buckets, that prunes the
  per-query bucket scan from O(buckets) to near O(answer);
* :class:`BatchServingEngine` — cache → index → vectorised kernel →
  fallback chain, wrapped behind the ordinary
  :class:`~repro.estimators.SelectivityEstimator` interface;
* :func:`parallel_map` — a deterministic chunked
  ``ProcessPoolExecutor`` mapper (order-preserving, metrics-merging)
  used by :meth:`repro.eval.ExperimentRunner.evaluate_sweep` and the
  bench harness to parallelise sweeps across techniques and datasets;
* the **sharded scatter-gather tier** — :class:`ShardPlan` (Min-Skew
  as the shard-boundary algorithm), :class:`ShardedHistogram` (one
  live histogram + engine per shard, independent epochs),
  :class:`ShardRouter` (clip, fan out inline or over a
  :class:`ShardWorkerPool` of pinned workers, sum partials), and
  :class:`ShardUnionEstimator` (the single-engine differential
  reference);
* the **micro-batching front door** — :class:`MicroBatcher` (the
  sans-IO coalescing core: FIFO queue, dual size/logical-wait trigger
  on a :class:`~repro.resilience.StepClock`, mutation barriers,
  bounded admission with a typed
  :class:`~repro.errors.OverloadedError` shed) and :class:`FrontDoor`
  (the asyncio TCP ingress speaking length-prefixed JSON frames, with
  :class:`FrontDoorClient` / :class:`FrontDoorThread` as its client
  harnesses) — concurrent single-rect clients coalesce into the same
  engine batches, bit-identical to calling the engine directly;
* the **fault-tolerance layer** over that tier — the
  :class:`ShardWorkerPool` supervises its workers (logical reply
  deadlines, typed :class:`~repro.errors.ShardWorkerError`,
  deterministic respawn), :class:`ShardWAL` journals every shard
  mutation with periodic checkpoints so a respawned worker replays
  back to a bit-identical histogram (:func:`attach_wals` /
  :func:`wal_recovery`), and :class:`ShardHealth` drives the router's
  per-shard quarantine state machine (healthy → suspect → quarantined
  → recovering) with degraded ``Uniform@s<id>`` partials for shards
  it cannot reach.

The serving fast paths are locked down by a differential test suite:
batch equals the scalar loop to exact float equality, cache-on equals
cache-off, a ``workers=4`` sweep is byte-identical to ``workers=1``,
and the sharded tier's answers equal the single-engine reference
bit-for-bit.
"""

from .batcher import MicroBatcher, PendingReply
from .cache import QueryCache, canonical_key
from .engine import BatchServingEngine
from .frontdoor import (
    FrontDoor,
    FrontDoorClient,
    FrontDoorThread,
    encode_frame,
)
from .index import BucketIndex
from .parallel import ShardWorkerPool, parallel_map
from .router import ShardRouter
from .shard import (
    HistogramShard,
    ShardedHistogram,
    ShardPlan,
    ShardUnionEstimator,
    shard_quotas,
)
from .supervision import HEALTH_STATES, ShardHealth
from .wal import ShardWAL, attach_wals, wal_recovery

__all__ = [
    "QueryCache",
    "canonical_key",
    "BucketIndex",
    "BatchServingEngine",
    "MicroBatcher",
    "PendingReply",
    "FrontDoor",
    "FrontDoorClient",
    "FrontDoorThread",
    "encode_frame",
    "parallel_map",
    "ShardWorkerPool",
    "ShardPlan",
    "HistogramShard",
    "ShardedHistogram",
    "ShardUnionEstimator",
    "ShardRouter",
    "shard_quotas",
    "ShardHealth",
    "HEALTH_STATES",
    "ShardWAL",
    "attach_wals",
    "wal_recovery",
]

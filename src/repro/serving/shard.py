"""Sharding a live histogram with Min-Skew shard boundaries.

The scatter-gather tier splits the data space into ``K`` disjoint shard
boxes and hosts one full serving stack — a
:class:`~repro.core.maintenance.MaintainedHistogram`, a
:class:`~repro.estimators.MaintainedEstimator` and a
:class:`~repro.serving.BatchServingEngine` — per shard, each with an
independent epoch.  A mutation routes to the *owning* shard only, so an
insert invalidates one shard's cache and index instead of the whole
tier.

**Min-Skew is the shard-boundary algorithm.**  :class:`ShardPlan` runs
the paper's own partitioner with a bucket quota of ``K``: the top-level
greedy cuts minimise spatial skew, which is exactly the load-balance
property a scale-out partitioning wants (Aji et al., PAPERS.md).  The
resulting blocks tile the data MBR, and ownership is resolved on the
construction grid itself (cell-label lookup), so shard assignment uses
the identical center rule Min-Skew uses to assign rectangles to
buckets.

**Exactness.**  The sharded tier is differentially gated against
:class:`ShardUnionEstimator` — the single-engine reference that runs
every shard's kernel over the *full* batch and accumulates the partial
sums in shard order.  Equality is bit-for-bit, not approximate, because
of three properties the router relies on:

* per-shard partials are evaluated over the same bucket list in the
  same order whether the batch was clipped or not;
* clipping a query to a shard's *routing box* (the MBR of the shard's
  inflated bucket boxes — the same inflation rule
  :class:`~repro.serving.BucketIndex` uses) never changes any clamp in
  the Section 3.1 formula, because every inflated bucket box is
  contained in the routing box;
* a query that misses the routing box contributes exactly ``+0.0`` for
  every bucket of that shard, so skipping the shard is the identity on
  a non-negative accumulator.

The plan box of a shard is *not* a valid routing box: member rectangles
are assigned by center, so bucket boxes (and their inflation) can stick
out of the plan box.  Routing boxes are therefore derived from the
current buckets and recomputed whenever the shard's epoch moves.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import TYPE_CHECKING, Any, Callable, Dict, List, \
    Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from ..core.bucket import Bucket, BucketArrays, estimate_many_arrays
from ..core.maintenance import MaintainedHistogram
from ..core.minskew import MinSkewPartitioner
from ..estimators import (
    MaintainedEstimator,
    SelectivityEstimator,
    UniformEstimator,
    WORDS_PER_BUCKET,
)
from ..geometry import Rect, RectSet
from ..partitioners.base import Partitioner
from ..resilience import (
    CircuitBreaker,
    FallbackLink,
    GuardedEstimator,
    StepClock,
)
from ..tuning import FeedbackTuner, TuningReport
from .engine import DEFAULT_CACHE_SIZE, BatchServingEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .wal import ShardWAL

__all__ = [
    "ShardPlan",
    "HistogramShard",
    "ShardedHistogram",
    "ShardUnionEstimator",
    "shard_quotas",
]

#: Density-grid resolution for the shard-boundary Min-Skew run.  Shard
#: boundaries are coarse structures (K is small), so the plan grid can
#: be far coarser than a histogram-quality grid.
DEFAULT_PLAN_REGIONS = 256


def shard_quotas(
    n_buckets: int, counts: Sequence[int]
) -> List[int]:
    """Split a bucket budget across shards, proportional to load.

    Largest-remainder apportionment of ``n_buckets`` over the per-shard
    rectangle ``counts``; every non-empty shard receives at least one
    bucket (even when that overshoots a very small budget), empty
    shards receive zero.  Deterministic: remainder ties break on the
    lower shard id.
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be at least 1")
    total = sum(counts)
    quotas = [0] * len(counts)
    if total == 0:
        return quotas
    floors: List[int] = []
    remainders: List[Tuple[float, int]] = []
    for sid, count in enumerate(counts):
        share = n_buckets * (count / total)
        floors.append(int(math.floor(share)))
        remainders.append((-(share - math.floor(share)), sid))
    left = n_buckets - sum(floors)
    remainders.sort()
    bonus = {sid for _, sid in remainders[:max(0, left)]}
    for sid, count in enumerate(counts):
        if count == 0:
            continue
        quotas[sid] = max(1, floors[sid] + (1 if sid in bonus else 0))
    return quotas


class ShardPlan:
    """K disjoint shard boxes tiling the data MBR, from Min-Skew.

    Ownership is resolved on the plan's density grid: a point is
    clamped into the grid and mapped through the cell→shard label
    array, exactly how Min-Skew assigns rectangles to buckets — total,
    deterministic, and immune to floating-point edge effects between
    adjacent shard boxes.
    """

    def __init__(
        self,
        boxes: Sequence[Rect],
        bounds: Rect,
        label: "npt.NDArray[np.int64]",
        cell_width: float,
        cell_height: float,
    ) -> None:
        if not boxes:
            raise ValueError("a shard plan needs at least one box")
        self.boxes: List[Rect] = list(boxes)
        self.bounds = bounds
        self._label = np.asarray(label, dtype=np.int64)
        self._nx, self._ny = self._label.shape
        self._cell_w = cell_width
        self._cell_h = cell_height

    @property
    def n_shards(self) -> int:
        return len(self.boxes)

    @classmethod
    def build(
        cls,
        data: RectSet,
        n_shards: int,
        *,
        n_regions: int = DEFAULT_PLAN_REGIONS,
    ) -> "ShardPlan":
        """Run Min-Skew with a bucket quota of ``n_shards``.

        The returned plan may hold fewer boxes than requested when the
        input cannot be cut further (degenerate bounds, tiny grids).
        """
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        partitioner = MinSkewPartitioner(
            n_shards, n_regions=n_regions
        )
        result = partitioner.partition_full(data)
        grid = result.grid
        label = np.full((grid.nx, grid.ny), -1, dtype=np.int64)
        boxes: List[Rect] = []
        for sid, (ix0, ix1, iy0, iy1) in enumerate(result.blocks):
            label[ix0:ix1 + 1, iy0:iy1 + 1] = sid
            boxes.append(grid.block_rect(ix0, ix1, iy0, iy1))
        return cls(
            boxes, grid.bounds, label,
            grid.cell_width, grid.cell_height,
        )

    # ------------------------------------------------------------------
    def owners(
        self, centers: "npt.NDArray[np.float64]"
    ) -> "npt.NDArray[np.int64]":
        """Owning shard id for each ``(x, y)`` center row."""
        cx = np.asarray(centers[:, 0], dtype=np.float64)
        cy = np.asarray(centers[:, 1], dtype=np.float64)
        ix = np.floor(
            (cx - self.bounds.x1) / self._cell_w
        ).astype(np.int64)
        iy = np.floor(
            (cy - self.bounds.y1) / self._cell_h
        ).astype(np.int64)
        np.clip(ix, 0, self._nx - 1, out=ix)
        np.clip(iy, 0, self._ny - 1, out=iy)
        return self._label[ix, iy]

    def owner(self, cx: float, cy: float) -> int:
        """Owning shard id of a single point."""
        centers = np.array([[cx, cy]], dtype=np.float64)
        return int(self.owners(centers)[0])

    def __repr__(self) -> str:
        return (
            f"ShardPlan(n_shards={self.n_shards}, "
            f"grid={self._nx}x{self._ny})"
        )


def _inflated_mbr(buckets: Sequence[Bucket]) -> Optional[Rect]:
    """MBR of the buckets' inflated boxes (None for no buckets).

    Uses the exact inflation rule of
    :class:`~repro.serving.BucketIndex`: half the average member
    extents per side, except degenerate (zero-area) boxes, which the
    kernel answers with a raw touch test and are left uninflated.
    """
    if not buckets:
        return None
    x1 = y1 = math.inf
    x2 = y2 = -math.inf
    for b in buckets:
        box = b.bbox
        if box.area > 0.0:
            hw = b.avg_width / 2.0
            hh = b.avg_height / 2.0
        else:
            hw = hh = 0.0
        x1 = min(x1, box.x1 - hw)
        y1 = min(y1, box.y1 - hh)
        x2 = max(x2, box.x2 + hw)
        y2 = max(y2, box.y2 + hh)
    return Rect(x1, y1, x2, y2)


class _PrebuiltEstimator:
    """A picklable zero-argument builder returning a fixed estimator.

    Guarded-chain links take builder *callables*; lambdas cannot cross
    a pool worker's pickle boundary, this class can.
    """

    __slots__ = ("estimator",)

    def __init__(self, estimator: SelectivityEstimator) -> None:
        self.estimator = estimator

    def __call__(self) -> SelectivityEstimator:
        return self.estimator


def _shard_chain(
    primary: MaintainedEstimator,
    data: RectSet,
    shard_id: int,
) -> GuardedEstimator:
    """Per-shard guarded chain: live histogram → Uniform snapshot.

    Link names carry the shard id (``Min-Skew@s0``), so fault sites
    (``estimator.<name>``) and resilience counters
    (``resilience.link_failures.<name>``) are naturally scoped to one
    shard — the property the sharded chaos suite asserts.
    """
    clock = StepClock()
    links = [
        FallbackLink(
            f"{primary.name}@s{shard_id}",
            _PrebuiltEstimator(primary),
            CircuitBreaker(clock),
        ),
        FallbackLink(
            f"Uniform@s{shard_id}",
            _PrebuiltEstimator(UniformEstimator(data)),
            CircuitBreaker(clock),
        ),
    ]
    chain = GuardedEstimator(links, clock=clock)
    chain.name = primary.name
    return chain


class HistogramShard:
    """One shard: plan box, live histogram, serving engine, epoch.

    The histogram is created lazily — a shard that received no
    rectangles at build time materialises its stack on the first
    insert.  ``epoch`` folds that creation in (it bumps alongside every
    histogram epoch move), so consumers watching the shard see lazy
    creation as a mutation like any other.
    """

    def __init__(
        self,
        shard_id: int,
        box: Rect,
        partitioner: Partitioner,
        data: RectSet,
        *,
        drift_threshold: float = 0.2,
        cache_size: int = DEFAULT_CACHE_SIZE,
        auto_index: bool = True,
        auto_refresh: bool = True,
        guarded: bool = False,
    ) -> None:
        self.shard_id = shard_id
        self.box = box
        self._partitioner = partitioner
        self._drift_threshold = drift_threshold
        self._cache_size = cache_size
        self._auto_index = auto_index
        self._auto_refresh = auto_refresh
        self._guarded = guarded
        self._epoch_base = 0
        self.hist: Optional[MaintainedHistogram] = None
        self.estimator: Optional[MaintainedEstimator] = None
        self.chain: Optional[GuardedEstimator] = None
        self.engine: Optional[BatchServingEngine] = None
        self._routing_epoch = -1
        self._routing_box: Optional[Rect] = None
        self._wal: Optional["ShardWAL"] = None
        self._degraded_est: Optional[UniformEstimator] = None
        self._degraded_epoch = -1
        if len(data) > 0:
            self._create(data)

    def _create(self, data: RectSet) -> None:
        self.hist = MaintainedHistogram(
            self._partitioner, data,
            drift_threshold=self._drift_threshold,
        )
        self._build_stack(data)

    def _build_stack(self, data: RectSet) -> None:
        """Estimator/chain/engine around the current histogram."""
        assert self.hist is not None
        self.estimator = MaintainedEstimator(
            self.hist, name=self._partitioner.name
        )
        inner: SelectivityEstimator = self.estimator
        if self._guarded:
            self.chain = _shard_chain(
                self.estimator, data, self.shard_id
            )
            inner = self.chain
        self.engine = BatchServingEngine(
            inner,
            cache_size=self._cache_size,
            auto_index=self._auto_index,
        )

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic shard version (histogram epoch + lazy creation)."""
        hist_epoch = self.hist.epoch if self.hist is not None else 0
        return self._epoch_base + hist_epoch

    @property
    def buckets(self) -> List[Bucket]:
        if self.hist is None:
            return []
        return list(self.hist.buckets)

    def __len__(self) -> int:
        return len(self.hist) if self.hist is not None else 0

    def routing_box(self) -> Optional[Rect]:
        """Current inflated-bucket MBR (None → nothing can match).

        Cached per epoch; any mutation (or lazy creation) invalidates
        the cached box on the next call.
        """
        if self.epoch != self._routing_epoch:
            self._routing_box = _inflated_mbr(self.buckets)
            self._routing_epoch = self.epoch
        return self._routing_box

    # ------------------------------------------------------------------
    # serving (also the pool-worker entry points)
    # ------------------------------------------------------------------
    def estimate_batch_coords(
        self, coords: "npt.NDArray[np.float64]"
    ) -> "npt.NDArray[np.float64]":
        """Serve an ``(M, 4)`` coordinate block through the engine."""
        if self.engine is None:
            return np.zeros(coords.shape[0], dtype=np.float64)
        queries = RectSet(coords, copy=False, validate=False)
        return self.engine.estimate_batch(queries)

    def estimate_one(
        self, x1: float, y1: float, x2: float, y2: float
    ) -> float:
        """Serve one (already clipped) query through the engine."""
        if self.engine is None:
            return 0.0
        return self.engine.estimate(Rect(x1, y1, x2, y2))

    # ------------------------------------------------------------------
    # maintenance (also the pool-worker entry points)
    # ------------------------------------------------------------------
    def insert(self, rect: Rect) -> None:
        if self.hist is None:
            coords = np.asarray(
                [rect.as_tuple()], dtype=np.float64
            )
            self._create(
                RectSet(coords, copy=False, validate=False)
            )
            self._epoch_base += 1
        else:
            self.hist.insert(rect)
            self._maybe_refresh()
        self._log_op("insert", rect)

    def delete(self, rect: Rect) -> bool:
        if self.hist is None:
            return False
        accepted = self.hist.delete(rect)
        if accepted:
            self._maybe_refresh()
            self._log_op("delete", rect)
        return accepted

    def apply_op(self, kind: str, rect: Rect) -> bool:
        """Mutation entry point used by pool workers."""
        if kind == "insert":
            self.insert(rect)
            return True
        return self.delete(rect)

    def _maybe_refresh(self) -> None:
        if (
            self._auto_refresh
            and self.hist is not None
            and self.hist.needs_refresh
        ):
            self.hist.refresh()

    def tune(
        self,
        queries: RectSet,
        *,
        max_ops: int = 2,
        grid_nx: int = 8,
        grid_ny: int = 8,
    ) -> Optional[TuningReport]:
        """One feedback pass over this shard's own rows.

        Each shard scores the sampled queries against *its* exact
        oracle — shard answers are additive, so per-shard truth is
        the shard's contribution to the union answer.  The tuner
        publishes through the histogram's ``replace_buckets`` (one
        epoch bump), which the shard :attr:`epoch`, the
        :meth:`routing_box` cache, the engine's revalidation, and any
        union reference all pick up through the normal staleness
        machinery.  Deliberately not WAL-journaled: a tuned layout
        lost to a crash is re-derivable from future feedback, while
        recovery restores a bit-consistent pre-tune snapshot.
        Returns ``None`` for a shard that has no histogram yet.
        """
        if self.hist is None:
            return None
        tuner = FeedbackTuner(
            self.hist, max_ops=max_ops,
            grid_nx=grid_nx, grid_ny=grid_ny,
        )
        return tuner.tune(queries)

    def adopt_buckets(self, buckets: List[Bucket]) -> None:
        """Adopt a tuned bucket list published elsewhere.

        Replica entry point for pooled serving: the authoritative
        (parent) copy runs the tuner, then ships the resulting layout
        to the owning worker so both copies publish the identical
        buckets through :meth:`replace_buckets` — one epoch bump on
        each side, no recomputation, no chance of the replica's
        hill-climb diverging.  Like :meth:`tune`, deliberately not
        WAL-journaled.  A shard with no histogram ignores the adopt.
        """
        if self.hist is None:
            return
        self.hist.replace_buckets(list(buckets))

    # ------------------------------------------------------------------
    # write-ahead logging + recovery
    # ------------------------------------------------------------------
    def attach_wal(self, wal: "ShardWAL") -> None:
        """Journal every accepted mutation from now on.

        Only the authoritative (parent) copy holds a WAL: worker
        copies drop the handle at the pickle boundary, so each
        mutation is journaled exactly once.
        """
        self._wal = wal

    def _log_op(self, kind: str, rect: Rect) -> None:
        if self._wal is not None:
            self._wal.record(kind, rect)
            self._wal.maybe_checkpoint(self)

    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-serialisable full mutable state (checkpoint body)."""
        hist_state = (
            self.hist.state() if self.hist is not None else None
        )
        return {
            "shard_id": self.shard_id,
            "epoch_base": self._epoch_base,
            "hist": hist_state,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`snapshot_state` capture bit-identically.

        The histogram is rebuilt via
        :meth:`~repro.core.maintenance.MaintainedHistogram.from_state`
        (no re-partitioning — drifted bucket statistics are restored
        verbatim) and the serving stack re-created around it; caches,
        indexes and routing boxes start cold and rebuild on demand.
        """
        self._epoch_base = int(state["epoch_base"])
        hist_state = state["hist"]
        if hist_state is None:
            self.hist = None
            self.estimator = None
            self.chain = None
            self.engine = None
        else:
            self.hist = MaintainedHistogram.from_state(
                self._partitioner, hist_state,
                drift_threshold=self._drift_threshold,
            )
            self._build_stack(self.hist.current_data())
        self._routing_epoch = -1
        self._routing_box = None
        self._degraded_est = None
        self._degraded_epoch = -1

    def state_digest(self) -> str:
        """SHA-256 over the canonical snapshot (the bit-identity
        gate: a recovered worker copy must digest equal to the
        authoritative copy)."""
        body = json.dumps(
            self.snapshot_state(), sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def clone_unbuilt(self) -> "HistogramShard":
        """A fresh, empty shard with this shard's configuration —
        the recovery template :meth:`ShardWAL.recover` fills in."""
        return HistogramShard(
            self.shard_id,
            self.box,
            self._partitioner,
            RectSet.empty(),
            drift_threshold=self._drift_threshold,
            cache_size=self._cache_size,
            auto_index=self._auto_index,
            auto_refresh=self._auto_refresh,
            guarded=self._guarded,
        )

    def __getstate__(self) -> Dict[str, Any]:
        """Drop the WAL handle at the pickle boundary: a worker copy
        replays mutations that the parent already journaled, and must
        never journal them again."""
        state = dict(self.__dict__)
        state["_wal"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._wal = None

    # ------------------------------------------------------------------
    # degraded serving (the quarantine partial)
    # ------------------------------------------------------------------
    def degraded_estimator(self) -> Optional[UniformEstimator]:
        """The shard's ``Uniform@s<id>`` last resort, parent-side.

        Built over the live data and cached per epoch.  The router
        serves a quarantined or repeatedly failing shard's partial
        through this estimator directly — never through the engine,
        so degraded answers are never cached.  ``None`` means the
        shard holds no data and its partial is exactly zero.
        """
        if self.hist is None or len(self.hist) == 0:
            return None
        if self._degraded_epoch != self.epoch \
                or self._degraded_est is None:
            est = UniformEstimator(self.hist.current_data())
            est.name = f"Uniform@s{self.shard_id}"
            self._degraded_est = est
            self._degraded_epoch = self.epoch
        return self._degraded_est

    def __repr__(self) -> str:
        return (
            f"HistogramShard(id={self.shard_id}, n={len(self)}, "
            f"buckets={len(self.buckets)}, epoch={self.epoch})"
        )


class ShardedHistogram:
    """A Min-Skew-sharded live histogram: plan + one stack per shard."""

    def __init__(
        self,
        plan: ShardPlan,
        shards: Sequence[HistogramShard],
        *,
        name: str = "Sharded",
    ) -> None:
        if len(shards) != plan.n_shards:
            raise ValueError(
                "shard list does not match the plan "
                f"({len(shards)} shards, plan has {plan.n_shards})"
            )
        self.plan = plan
        self.shards: List[HistogramShard] = list(shards)
        self.name = name

    @classmethod
    def build(
        cls,
        data: RectSet,
        *,
        n_shards: int = 4,
        n_buckets: int = 40,
        partitioner_factory:
            "Callable[[int], Partitioner] | None" = None,
        plan: Optional[ShardPlan] = None,
        plan_regions: int = DEFAULT_PLAN_REGIONS,
        n_regions: int = 2_500,
        drift_threshold: float = 0.2,
        cache_size: int = DEFAULT_CACHE_SIZE,
        auto_index: bool = True,
        auto_refresh: bool = True,
        guarded: bool = False,
    ) -> "ShardedHistogram":
        """Plan the shard boxes and build one serving stack each.

        ``partitioner_factory`` maps a per-shard bucket quota to a
        fresh partitioner (default: Min-Skew over ``n_regions``
        regions); the total ``n_buckets`` budget is apportioned across
        shards proportionally to their rectangle counts
        (:func:`shard_quotas`).
        """
        if len(data) == 0:
            raise ValueError("cannot shard an empty distribution")
        if plan is None:
            plan = ShardPlan.build(
                data, n_shards, n_regions=plan_regions
            )
        factory: Callable[[int], Partitioner]
        if partitioner_factory is None:
            def _default_factory(quota: int) -> Partitioner:
                return MinSkewPartitioner(
                    quota, n_regions=n_regions
                )
            factory = _default_factory
        else:
            factory = partitioner_factory
        owners = plan.owners(data.centers())
        counts = np.bincount(owners, minlength=plan.n_shards)
        quotas = shard_quotas(
            n_buckets, [int(c) for c in counts]
        )
        shards: List[HistogramShard] = []
        for sid in range(plan.n_shards):
            sub = data.select(owners == sid)
            quota = quotas[sid] if quotas[sid] > 0 else 1
            shards.append(
                HistogramShard(
                    sid,
                    plan.boxes[sid],
                    factory(quota),
                    sub,
                    drift_threshold=drift_threshold,
                    cache_size=cache_size,
                    auto_index=auto_index,
                    auto_refresh=auto_refresh,
                    guarded=guarded,
                )
            )
        name = shards[0]._partitioner.name if shards else "Sharded"
        return cls(plan, shards, name=name)

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    @property
    def buckets(self) -> List[Bucket]:
        """Union bucket list, in shard order (the reference order)."""
        out: List[Bucket] = []
        for shard in self.shards:
            out.extend(shard.buckets)
        return out

    def epochs(self) -> List[int]:
        return [s.epoch for s in self.shards]

    def owner_of(self, rect: Rect) -> int:
        """The shard owning ``rect`` (by center, the Min-Skew rule)."""
        cx, cy = rect.center
        return self.plan.owner(cx, cy)

    # ------------------------------------------------------------------
    # mutations: routed to the owning shard only
    # ------------------------------------------------------------------
    def insert(self, rect: Rect) -> int:
        """Insert; returns the (only) shard id whose epoch moved."""
        sid = self.owner_of(rect)
        self.shards[sid].insert(rect)
        return sid

    def delete(self, rect: Rect) -> Tuple[int, bool]:
        """Delete; returns ``(owning shard id, accepted)``."""
        sid = self.owner_of(rect)
        return sid, self.shards[sid].delete(rect)

    def tune(
        self,
        queries: RectSet,
        *,
        max_ops: int = 2,
        grid_nx: int = 8,
        grid_ny: int = 8,
    ) -> List[Optional[TuningReport]]:
        """Run one feedback pass on every built shard.

        Every shard receives the full query sample and scores it
        against its own rows (see :meth:`HistogramShard.tune`); each
        tuned shard moves only its own epoch, preserving the tier's
        owner-only invalidation property.
        """
        return [
            shard.tune(
                queries, max_ops=max_ops,
                grid_nx=grid_nx, grid_ny=grid_ny,
            )
            for shard in self.shards
        ]

    # ------------------------------------------------------------------
    def union_estimator(self) -> "ShardUnionEstimator":
        """The single-engine differential reference over this tier."""
        return ShardUnionEstimator(self)

    def current_data(self) -> RectSet:
        """The live distribution across every shard (shard order)."""
        parts = [
            s.hist.current_data()
            for s in self.shards
            if s.hist is not None and len(s.hist) > 0
        ]
        if not parts:
            return RectSet.empty()
        coords = np.vstack([p.coords for p in parts])
        return RectSet(coords, copy=False, validate=False)

    def size_words(self) -> int:
        """Summary footprint: buckets plus the plan's shard boxes."""
        buckets = sum(len(s.buckets) for s in self.shards)
        return WORDS_PER_BUCKET * buckets + 4 * self.n_shards

    def __repr__(self) -> str:
        return (
            f"ShardedHistogram({self.name!r}, "
            f"n_shards={self.n_shards}, n={len(self)})"
        )


class ShardUnionEstimator(SelectivityEstimator):
    """Single-engine reference: shard kernels over the *full* batch.

    Evaluates each shard's bucket kernel on every (unclipped) query and
    accumulates the per-shard partial sums left-to-right in shard-id
    order.  The router reproduces exactly this computation — clipping
    and skipping are bit-exact identities (module docstring) — so
    ``router.estimate_batch(q) == union.estimate_batch(q)`` bit-for-bit
    is the differential gate of the sharded tier.

    A flat estimator over the concatenated bucket list is *not* an
    equivalent reference: numpy's pairwise summation over the union
    bucket axis associates differently than per-shard partial sums.
    """

    def __init__(self, sharded: ShardedHistogram) -> None:
        self._sharded = sharded
        self.name = sharded.name
        self._kernel_key: Optional[Tuple[int, ...]] = None
        self._kernels: List[Optional[BucketArrays]] = []

    def _sync_kernels(self) -> List[Optional[BucketArrays]]:
        """Per-shard kernel snapshots, rebuilt when any epoch moves."""
        key = tuple(s.epoch for s in self._sharded.shards)
        if key != self._kernel_key:
            self._kernels = [
                BucketArrays(s.buckets) if s.buckets else None
                for s in self._sharded.shards
            ]
            self._kernel_key = key
        return self._kernels

    def estimate(self, query: Rect) -> float:
        qrow = np.array(
            [[query.x1, query.y1, query.x2, query.y2]],
            dtype=np.float64,
        )
        total = 0.0
        for arrays in self._sync_kernels():
            if arrays is not None:
                total += float(arrays.estimate_block(qrow)[0])
        return total

    def _estimate_batch(
        self, queries: RectSet
    ) -> "npt.NDArray[np.float64]":
        result = np.zeros(len(queries), dtype=np.float64)
        for arrays in self._sync_kernels():
            if arrays is not None:
                result += estimate_many_arrays(arrays, queries)
        return result

    def size_words(self) -> int:
        return self._sharded.size_words()

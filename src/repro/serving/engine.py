"""The batch serving engine: cache → index → kernel → fallback chain.

:class:`BatchServingEngine` wraps any
:class:`~repro.estimators.SelectivityEstimator` behind the same
interface and serves workloads through three layers, none of which is
allowed to change a single answer:

1. the **cache** partitions each batch into already-answered queries
   and fresh ones; only the fresh subset reaches the estimator, and
   because the vectorised kernels evaluate every batch row
   independently, the filled batch is bit-identical to an uncached
   evaluation;
2. the **index** (attached automatically to any
   :class:`~repro.estimators.BucketEstimator` found in the wrapped
   estimator, including inside a
   :class:`~repro.resilience.GuardedEstimator` chain) prunes the
   scalar path's bucket scan;
3. the inner estimator's own ``estimate_batch`` runs the vectorised
   kernel — and when the inner estimator is a guarded fallback chain,
   faults degrade along the chain exactly as they do on the scalar
   path.

Both layers hold *derived* state, and derived state can go stale two
ways, each handled by the engine's **revalidation** step that runs
before any cache or index is consulted:

* **data staleness** — a live summary
  (:class:`~repro.estimators.MaintainedEstimator`) moved its epoch
  under maintenance.  The engine remembers the epoch it last observed
  for every reachable bucket estimator; on movement it flushes the
  cache, forces the estimator's kernel snapshot to re-sync, and
  rebuilds the attached index from the new buckets.  Counted under
  ``serving.epoch.*`` (``stale``, ``cache_flushes``,
  ``index_rebuilds``).
* **chain staleness** — a guarded chain degraded to a fallback link or
  recovered from one since the previous serve.  Cached answers from
  the old link would silently mix qualities, so the cache is flushed
  on every serving-link transition (``serving.epoch.transitions``);
  additionally, answers produced while the chain is degraded are
  *never* cached, so a recovered chain re-computes popular queries at
  full quality instead of replaying Uniform-quality numbers.  A link
  built lazily mid-degradation is discovered by the same step and gets
  its index then (``serving.epoch.links_indexed``).

One window remains open by design: the batch *during which* a chain
degrades can mix earlier cached healthy answers with fresh degraded
ones, and a batch answered entirely from cache cannot observe a chain
transition at all (the first miss heals it).  Closing it would require
consulting the chain before every cache hit, which is the cost the
cache exists to avoid.

The engine reports under the ``serving.*`` metric namespace
(``serving.requests``, ``serving.queries``, the ``serving.batch``
timer, the cache's ``serving.cache.*`` counters, and the
``serving.epoch.*`` revalidation counters); the wrapped estimator
keeps its own ``estimator.*`` accounting for the queries that actually
reach it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from ..estimators import BucketEstimator, SelectivityEstimator
from ..geometry import Rect, RectSet, validate_coords_array, validate_extent
from ..obs import OBS
from ..resilience import GuardedEstimator
from ..tuning import FeedbackCollector
from .cache import QueryCache, canonical_key
from .index import BucketIndex

__all__ = ["BatchServingEngine"]

#: Default cache capacity: comfortably larger than the paper's
#: 10 000-query workloads' working set of *distinct* rectangles under
#: the biased query model.
DEFAULT_CACHE_SIZE = 4096


def _bucket_estimators(
    estimator: SelectivityEstimator,
) -> List[BucketEstimator]:
    """Every :class:`BucketEstimator` reachable inside ``estimator``.

    Looks through a guarded fallback chain's already-built links;
    unbuilt links are left lazy (indexing them would force — and pay
    for — their construction up front).  The engine re-runs this
    discovery on every serve, so a link built lazily mid-degradation
    is picked up on the next call rather than never.
    """
    if isinstance(estimator, BucketEstimator):
        return [estimator]
    found: List[BucketEstimator] = []
    if isinstance(estimator, GuardedEstimator):
        for link in estimator.links:
            built = link.built_estimator
            if isinstance(built, BucketEstimator):
                found.append(built)
    return found


class BatchServingEngine(SelectivityEstimator):
    """Serves single queries and batches through cache and index.

    Parameters
    ----------
    estimator:
        The wrapped estimator; the engine adopts its ``name`` so
        downstream error tables key identically.
    cache_size:
        LRU capacity; ``0`` disables the cache entirely.
    auto_index:
        Build and attach a :class:`BucketIndex` to every reachable
        :class:`BucketEstimator` (including ones that only become
        reachable later, when a guarded link builds lazily).
    feedback:
        Optional :class:`~repro.tuning.FeedbackCollector`.  Every
        served (query, answer) pair is offered to it *after* the
        answer is produced — a deterministic O(1) sampling append
        that cannot change any answer or any cache/epoch decision.
        The tuner drains the collector off the hot path.
    """

    def __init__(
        self,
        estimator: SelectivityEstimator,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        auto_index: bool = True,
        feedback: Optional[FeedbackCollector] = None,
    ) -> None:
        self.inner = estimator
        self.name = estimator.name
        self.feedback = feedback
        self.cache: Optional[QueryCache] = (
            QueryCache(cache_size) if cache_size > 0 else None
        )
        self.auto_index = auto_index
        self.indexed: List[BucketEstimator] = []
        #: last observed epoch per reachable bucket estimator, keyed by
        #: identity (the value tuple keeps the estimator alive so ids
        #: cannot be recycled under us).
        self._observed: Dict[int, Tuple[BucketEstimator, int]] = {}
        #: last observed serving link of a guarded chain (None until
        #: the chain has served once).
        self._chain_state: Optional[str] = None
        self._revalidate()

    # ------------------------------------------------------------------
    # revalidation: epochs, lazy links, chain transitions
    # ------------------------------------------------------------------
    def _flush_cache(self) -> None:
        # unconditional: ``flushes`` counts invalidation *events*, and
        # an event against an empty cache is still an event (degraded
        # answers are never cached, so a recovery transition usually
        # finds the cache already empty).
        if self.cache is not None:
            self.cache.flush()

    def _revalidate(self) -> None:
        """Bring every piece of derived state up to date.

        Runs before any cache lookup.  Three responsibilities:

        * discover bucket estimators that became reachable since the
          last serve (lazily built guarded links) and index them;
        * compare each known estimator's epoch against the last
          observed value; on movement, re-sync its kernel snapshot,
          rebuild its index, and flush the cache;
        * compare the guarded chain's serving link against the last
          observed one; on a transition, flush the cache.
        """
        stale = False
        for est in _bucket_estimators(self.inner):
            known = self._observed.get(id(est))
            if known is None:
                if self.auto_index and est.buckets:
                    est.attach_index(
                        BucketIndex(est.buckets, epoch=est.epoch)
                    )
                    self.indexed.append(est)
                    if OBS.enabled:
                        OBS.add("serving.epoch.links_indexed")
                self._observed[id(est)] = (est, est.epoch)
                continue
            if est.epoch != known[1]:
                stale = True
                est.sync()
                if self.auto_index:
                    if est.buckets:
                        est.attach_index(
                            BucketIndex(est.buckets, epoch=est.epoch)
                        )
                        if est not in self.indexed:
                            self.indexed.append(est)
                    if OBS.enabled:
                        OBS.add("serving.epoch.index_rebuilds")
                self._observed[id(est)] = (est, est.epoch)
        if stale:
            if OBS.enabled:
                OBS.add("serving.epoch.stale")
            self._flush_cache()
        self._observe_chain()

    def _observe_chain(self) -> None:
        """Flush the cache when the chain's serving link has moved.

        The first observed link (``None`` → name) is not a transition:
        flushing there would penalise every engine's very first serve.
        """
        chain = self.inner
        if not isinstance(chain, GuardedEstimator):
            return
        current = chain.last_served
        if current is None:
            return
        if self._chain_state is not None \
                and current != self._chain_state:
            if OBS.enabled:
                OBS.add("serving.epoch.transitions")
            self._flush_cache()
        self._chain_state = current

    def _epoch_point(self) -> Tuple[Tuple[int, int], ...]:
        """The pinned epoch-read point of one serve.

        Captured before the cache is consulted and compared after the
        kernel dispatch: if any reachable estimator's epoch moved in
        between (a mutation landed *mid-batch*), the cached rows are
        pre-mutation and the fresh rows post-mutation — filling them
        into one batch would mix epochs.  The tuple covers every
        observed estimator, so a mutation on any link of a guarded
        chain moves the point too.  Granularity is the dispatch call:
        mutations interleave between Python-level steps, never inside
        one vectorised kernel evaluation.
        """
        return tuple(
            (key, est.epoch)
            for key, (est, _seen) in self._observed.items()
        )

    def _cacheable(self) -> bool:
        """Whether answers from this serve may enter the cache.

        Degraded-chain answers are excluded: caching them would keep
        fallback-quality numbers alive after the chain recovers.
        """
        chain = self.inner
        if isinstance(chain, GuardedEstimator):
            return not chain.is_degraded
        return True

    # ------------------------------------------------------------------
    def estimate(self, query: Rect) -> float:
        """Scalar serve: cache lookup, then the inner estimator.

        Validates exactly like the batch path — a NaN/inf or inverted
        query raises :class:`~repro.errors.GeometryError` before it
        can touch the cache or the inner estimator.
        """
        validate_extent(
            query.x1, query.y1, query.x2, query.y2, what="query"
        )
        self._revalidate()
        if self.cache is None:
            value = self.inner.estimate(query)
            if self.feedback is not None:
                self.feedback.observe(query, value)
            return value
        point = self._epoch_point()
        key = canonical_key(query.x1, query.y1, query.x2, query.y2)
        cached = self.cache.lookup(key)
        if cached is not None:
            if self.feedback is not None:
                self.feedback.observe(query, cached)
            return cached
        value = self.inner.estimate(query)
        self._observe_chain()
        # the epoch-read point is pinned at the pre-lookup epochs: a
        # mutation that landed between the lookup and the estimate
        # keeps this (post-mutation) answer out of the cache, so the
        # next revalidation's flush cannot race a fresh store
        if self._cacheable() and self._epoch_point() == point:
            self.cache.put(key, value)
        if self.feedback is not None:
            self.feedback.observe(query, value)
        return value

    def estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        """Batch serve under ``serving.*`` accounting.

        Overrides the base wrapper completely so the wrapped
        estimator's ``estimator.batch_queries`` counter reflects only
        the queries that actually reached it (cache hits never do);
        validation still runs first, exactly as the base contract
        requires.
        """
        validate_coords_array(queries.coords, what="query")
        if OBS.enabled:
            OBS.add("serving.requests")
            OBS.add("serving.queries", len(queries))
        with OBS.timer("serving.batch"):
            self._revalidate()
            values = self._serve(queries)
        if self.feedback is not None:
            self.feedback.observe_batch(queries, values)
        return values

    def _serve(self, queries: RectSet) -> npt.NDArray[np.float64]:
        if self.cache is None:
            return self.inner.estimate_batch(queries)
        for _attempt in range(2):
            point = self._epoch_point()
            values, missing = self.cache.lookup_batch(queries)
            if not missing.size:
                return values
            fresh = self.inner.estimate_batch(queries.select(missing))
            if self._epoch_point() != point:
                # a mutation landed mid-batch, between the cache
                # lookup and the kernel dispatch: the cached rows are
                # pre-mutation, the fresh rows post-mutation.  Flush
                # via revalidation and re-serve the whole batch at the
                # new epoch instead of mixing the two.
                if OBS.enabled:
                    OBS.add("serving.epoch.midbatch_retries")
                self._revalidate()
                continue
            values[missing] = fresh
            self._observe_chain()
            if self._cacheable():
                self.cache.store_batch(queries, missing, fresh)
            return values
        # epochs moved on every attempt: answer the batch with one
        # kernel dispatch at a single consistent point, bypassing (and
        # never populating) the cache
        return self.inner.estimate_batch(queries)

    # ------------------------------------------------------------------
    # pickling: epoch bookkeeping must survive a process boundary
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Serialise ``_observed`` as (estimator, epoch) pairs.

        The dict is keyed by ``id(est)``, and object ids do not
        survive pickling: an engine unpickled into a pool worker with
        the id-keyed dict intact would treat every estimator as newly
        discovered, record its *current* epoch without flushing, and
        happily serve whatever the pickled cache held — answers from
        before any mutation that happened between cache population
        and the pickle.  Shipping the pairs and re-keying on load
        keeps epoch-movement detection (and the cache flush it
        triggers) intact across the boundary.
        """
        state = self.__dict__.copy()
        state["_observed"] = list(self._observed.values())
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        observed = state.pop("_observed")
        self.__dict__.update(state)
        # pickle's memo preserves object identity within one payload,
        # so these are the same estimator objects reachable through
        # ``inner`` — re-keying by their new ids reconnects them.
        self._observed = {
            id(est): (est, epoch) for est, epoch in observed
        }

    # ------------------------------------------------------------------
    def size_words(self) -> int:
        """Summary footprint of the wrapped estimator (the cache and
        index are serving-time overhead, not summary state)."""
        return self.inner.size_words()

    def detach_indexes(self) -> None:
        """Remove every index this engine attached and stop attaching
        new ones (revalidation would otherwise re-index on the next
        serve)."""
        for bucket_est in self.indexed:
            bucket_est.attach_index(None)
        self.indexed = []
        self.auto_index = False

    def __repr__(self) -> str:
        cache = (
            f"cache={self.cache.capacity}" if self.cache else "no-cache"
        )
        return (
            f"BatchServingEngine({self.name!r}, {cache}, "
            f"indexed={len(self.indexed)})"
        )

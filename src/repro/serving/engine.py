"""The batch serving engine: cache → index → kernel → fallback chain.

:class:`BatchServingEngine` wraps any
:class:`~repro.estimators.SelectivityEstimator` behind the same
interface and serves workloads through three layers, none of which is
allowed to change a single answer:

1. the **cache** partitions each batch into already-answered queries
   and fresh ones; only the fresh subset reaches the estimator, and
   because the vectorised kernels evaluate every batch row
   independently, the filled batch is bit-identical to an uncached
   evaluation;
2. the **index** (attached automatically to any
   :class:`~repro.estimators.BucketEstimator` found in the wrapped
   estimator, including inside a
   :class:`~repro.resilience.GuardedEstimator` chain) prunes the
   scalar path's bucket scan;
3. the inner estimator's own ``estimate_batch`` runs the vectorised
   kernel — and when the inner estimator is a guarded fallback chain,
   faults degrade along the chain exactly as they do on the scalar
   path.

The engine reports under the ``serving.*`` metric namespace
(``serving.requests``, ``serving.queries``, the ``serving.batch``
timer, and the cache's ``serving.cache.*`` counters); the wrapped
estimator keeps its own ``estimator.*`` accounting for the queries
that actually reach it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import numpy.typing as npt

from ..estimators import BucketEstimator, SelectivityEstimator
from ..geometry import Rect, RectSet, validate_coords_array
from ..obs import OBS
from ..resilience import GuardedEstimator
from .cache import QueryCache, canonical_key
from .index import BucketIndex

__all__ = ["BatchServingEngine"]

#: Default cache capacity: comfortably larger than the paper's
#: 10 000-query workloads' working set of *distinct* rectangles under
#: the biased query model.
DEFAULT_CACHE_SIZE = 4096


def _bucket_estimators(
    estimator: SelectivityEstimator,
) -> List[BucketEstimator]:
    """Every :class:`BucketEstimator` reachable inside ``estimator``.

    Looks through a guarded fallback chain's already-built links;
    unbuilt links are left lazy (indexing them would force — and pay
    for — their construction up front).
    """
    if isinstance(estimator, BucketEstimator):
        return [estimator]
    found: List[BucketEstimator] = []
    if isinstance(estimator, GuardedEstimator):
        for link in estimator.links:
            built = link.built_estimator
            if isinstance(built, BucketEstimator):
                found.append(built)
    return found


class BatchServingEngine(SelectivityEstimator):
    """Serves single queries and batches through cache and index.

    Parameters
    ----------
    estimator:
        The wrapped estimator; the engine adopts its ``name`` so
        downstream error tables key identically.
    cache_size:
        LRU capacity; ``0`` disables the cache entirely.
    auto_index:
        Build and attach a :class:`BucketIndex` to every reachable
        :class:`BucketEstimator`.
    """

    def __init__(
        self,
        estimator: SelectivityEstimator,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        auto_index: bool = True,
    ) -> None:
        self.inner = estimator
        self.name = estimator.name
        self.cache: Optional[QueryCache] = (
            QueryCache(cache_size) if cache_size > 0 else None
        )
        self.indexed: List[BucketEstimator] = []
        if auto_index:
            for bucket_est in _bucket_estimators(estimator):
                bucket_est.attach_index(BucketIndex(bucket_est.buckets))
                self.indexed.append(bucket_est)

    # ------------------------------------------------------------------
    def estimate(self, query: Rect) -> float:
        """Scalar serve: cache lookup, then the inner estimator."""
        if self.cache is None:
            return self.inner.estimate(query)
        key = canonical_key(query.x1, query.y1, query.x2, query.y2)
        cached = self.cache.lookup(key)
        if cached is not None:
            return cached
        value = self.inner.estimate(query)
        self.cache.put(key, value)
        return value

    def estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        """Batch serve under ``serving.*`` accounting.

        Overrides the base wrapper completely so the wrapped
        estimator's ``estimator.batch_queries`` counter reflects only
        the queries that actually reached it (cache hits never do);
        validation still runs first, exactly as the base contract
        requires.
        """
        validate_coords_array(queries.coords, what="query")
        if OBS.enabled:
            OBS.add("serving.requests")
            OBS.add("serving.queries", len(queries))
        with OBS.timer("serving.batch"):
            return self._serve(queries)

    def _serve(self, queries: RectSet) -> npt.NDArray[np.float64]:
        if self.cache is None:
            return self.inner.estimate_batch(queries)
        values, missing = self.cache.lookup_batch(queries)
        if missing.size:
            fresh = self.inner.estimate_batch(queries.select(missing))
            values[missing] = fresh
            self.cache.store_batch(queries, missing, fresh)
        return values

    # ------------------------------------------------------------------
    def size_words(self) -> int:
        """Summary footprint of the wrapped estimator (the cache and
        index are serving-time overhead, not summary state)."""
        return self.inner.size_words()

    def detach_indexes(self) -> None:
        """Remove every index this engine attached."""
        for bucket_est in self.indexed:
            bucket_est.attach_index(None)
        self.indexed = []

    def __repr__(self) -> str:
        cache = (
            f"cache={self.cache.capacity}" if self.cache else "no-cache"
        )
        return (
            f"BatchServingEngine({self.name!r}, {cache}, "
            f"indexed={len(self.indexed)})"
        )

"""Query workload generation (paper Section 5.2).

"The query sets consist of a large number (10000) of rectangles lying
within the MBR of the input.  The centers of the rectangles were chosen
randomly from the set of centers of the input rectangles.  The average
width (height) of the query rectangle (referred to as parameter QSize in
the experiments) was varied from 2% to 25% of the width (height) of the
input bounding box ...  A desired average area, a, for the query
rectangles generated is achieved by setting the height and width of the
rectangles to be uniformly distributed in the range
[0.5 × √a, 1.5 × √a]."

Drawing query centers from *data* centers makes the workload "biased":
queries land where data lives, so empty results are rare (the paper's
error metric is undefined on all-empty workloads).  We draw the width
around ``QSize × MBR-width`` and the height around ``QSize × MBR-height``
(each uniform in ±50 % of its mean, per the paper's recipe), which
realises both published properties: the average width/height equals QSize
times the corresponding MBR side, and the average area equals
``QSize² × Area(T)``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..geometry import Rect, RectSet

#: QSize values used throughout the paper's experiments.
PAPER_QSIZES = (0.02, 0.05, 0.10, 0.15, 0.20, 0.25)

#: Query-set size used in the paper.
PAPER_N_QUERIES = 10_000

SeedLike = Union[int, np.random.Generator, None]


def _as_rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


#: Query-center placement models.
CENTER_MODES = ("data", "uniform")


def range_queries(
    data: RectSet,
    qsize: float,
    n_queries: int = PAPER_N_QUERIES,
    *,
    seed: SeedLike = None,
    bounds: Optional[Rect] = None,
    center_mode: str = "data",
) -> RectSet:
    """Generate a range-query workload for ``data``.

    Parameters
    ----------
    data:
        The input distribution; query centers are sampled (with
        replacement) from its rectangle centers.
    qsize:
        QSize: target average query extent as a fraction of the input
        MBR extent, per axis (paper range: 0.02 – 0.25).
    n_queries:
        Workload size (paper default 10 000).
    seed:
        RNG seed or generator.
    bounds:
        Overrides the input MBR (queries are clipped to it).
    center_mode:
        ``"data"`` (the paper's model: centers drawn from input
        rectangle centers, so queries probe where data lives) or
        ``"uniform"`` (centers uniform over the MBR — an unbiased
        workload used by the bias-sensitivity ablation; expect many
        empty results on skewed data).
    """
    if len(data) == 0:
        raise ValueError("cannot generate queries for an empty input")
    if not 0.0 < qsize <= 1.0:
        raise ValueError("qsize must be in (0, 1]")
    if n_queries < 1:
        raise ValueError("n_queries must be at least 1")
    if center_mode not in CENTER_MODES:
        raise ValueError(
            f"unknown center_mode {center_mode!r}; "
            f"choose from {CENTER_MODES}"
        )
    gen = _as_rng(seed)
    mbr = bounds if bounds is not None else data.mbr()

    if center_mode == "data":
        centers = data.centers()
        pick = gen.integers(0, len(data), size=n_queries)
        cx = centers[pick, 0]
        cy = centers[pick, 1]
    else:
        cx = gen.uniform(mbr.x1, mbr.x2, n_queries)
        cy = gen.uniform(mbr.y1, mbr.y2, n_queries)

    mean_w = qsize * mbr.width
    mean_h = qsize * mbr.height
    widths = gen.uniform(0.5 * mean_w, 1.5 * mean_w, n_queries)
    heights = gen.uniform(0.5 * mean_h, 1.5 * mean_h, n_queries)

    x1 = np.maximum(cx - widths / 2.0, mbr.x1)
    x2 = np.minimum(cx + widths / 2.0, mbr.x2)
    y1 = np.maximum(cy - heights / 2.0, mbr.y1)
    y2 = np.minimum(cy + heights / 2.0, mbr.y2)
    coords = np.column_stack((x1, y1, x2, y2))
    return RectSet(coords, copy=False, validate=False)


def point_queries(
    data: RectSet,
    n_queries: int = PAPER_N_QUERIES,
    *,
    seed: SeedLike = None,
    jitter_frac: float = 0.01,
) -> RectSet:
    """Generate a point-query workload (degenerate rectangles).

    Points are data-rectangle centers perturbed by a small jitter (a
    fraction of the MBR extent) and clipped to the MBR, so they probe
    dense areas without always hitting a center exactly.
    """
    if len(data) == 0:
        raise ValueError("cannot generate queries for an empty input")
    if n_queries < 1:
        raise ValueError("n_queries must be at least 1")
    gen = _as_rng(seed)
    mbr = data.mbr()

    centers = data.centers()
    pick = gen.integers(0, len(data), size=n_queries)
    x = centers[pick, 0] + gen.normal(
        0.0, jitter_frac * mbr.width, n_queries
    )
    y = centers[pick, 1] + gen.normal(
        0.0, jitter_frac * mbr.height, n_queries
    )
    np.clip(x, mbr.x1, mbr.x2, out=x)
    np.clip(y, mbr.y1, mbr.y2, out=y)
    coords = np.column_stack((x, y, x, y))
    return RectSet(coords, copy=False, validate=False)

"""Query workload generation (paper Section 5.2).

"The query sets consist of a large number (10000) of rectangles lying
within the MBR of the input.  The centers of the rectangles were chosen
randomly from the set of centers of the input rectangles.  The average
width (height) of the query rectangle (referred to as parameter QSize in
the experiments) was varied from 2% to 25% of the width (height) of the
input bounding box ...  A desired average area, a, for the query
rectangles generated is achieved by setting the height and width of the
rectangles to be uniformly distributed in the range
[0.5 × √a, 1.5 × √a]."

Drawing query centers from *data* centers makes the workload "biased":
queries land where data lives, so empty results are rare (the paper's
error metric is undefined on all-empty workloads).  We draw the width
around ``QSize × MBR-width`` and the height around ``QSize × MBR-height``
(each uniform in ±50 % of its mean, per the paper's recipe), which
realises both published properties: the average width/height equals QSize
times the corresponding MBR side, and the average area equals
``QSize² × Area(T)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..geometry import Rect, RectSet

#: QSize values used throughout the paper's experiments.
PAPER_QSIZES = (0.02, 0.05, 0.10, 0.15, 0.20, 0.25)

#: Query-set size used in the paper.
PAPER_N_QUERIES = 10_000

SeedLike = Union[int, np.random.Generator, None]


def _as_rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


#: Query-center placement models.
CENTER_MODES = ("data", "uniform")


def range_queries(
    data: RectSet,
    qsize: float,
    n_queries: int = PAPER_N_QUERIES,
    *,
    seed: SeedLike = None,
    bounds: Optional[Rect] = None,
    center_mode: str = "data",
) -> RectSet:
    """Generate a range-query workload for ``data``.

    Parameters
    ----------
    data:
        The input distribution; query centers are sampled (with
        replacement) from its rectangle centers.
    qsize:
        QSize: target average query extent as a fraction of the input
        MBR extent, per axis (paper range: 0.02 – 0.25).
    n_queries:
        Workload size (paper default 10 000).
    seed:
        RNG seed or generator.
    bounds:
        Overrides the input MBR (queries are clipped to it).
    center_mode:
        ``"data"`` (the paper's model: centers drawn from input
        rectangle centers, so queries probe where data lives) or
        ``"uniform"`` (centers uniform over the MBR — an unbiased
        workload used by the bias-sensitivity ablation; expect many
        empty results on skewed data).
    """
    if len(data) == 0:
        raise ValueError("cannot generate queries for an empty input")
    if not 0.0 < qsize <= 1.0:
        raise ValueError("qsize must be in (0, 1]")
    if n_queries < 1:
        raise ValueError("n_queries must be at least 1")
    if center_mode not in CENTER_MODES:
        raise ValueError(
            f"unknown center_mode {center_mode!r}; "
            f"choose from {CENTER_MODES}"
        )
    gen = _as_rng(seed)
    mbr = bounds if bounds is not None else data.mbr()

    if center_mode == "data":
        centers = data.centers()
        pick = gen.integers(0, len(data), size=n_queries)
        cx = centers[pick, 0]
        cy = centers[pick, 1]
    else:
        cx = gen.uniform(mbr.x1, mbr.x2, n_queries)
        cy = gen.uniform(mbr.y1, mbr.y2, n_queries)

    mean_w = qsize * mbr.width
    mean_h = qsize * mbr.height
    widths = gen.uniform(0.5 * mean_w, 1.5 * mean_w, n_queries)
    heights = gen.uniform(0.5 * mean_h, 1.5 * mean_h, n_queries)

    x1 = np.maximum(cx - widths / 2.0, mbr.x1)
    x2 = np.minimum(cx + widths / 2.0, mbr.x2)
    y1 = np.maximum(cy - heights / 2.0, mbr.y1)
    y2 = np.minimum(cy + heights / 2.0, mbr.y2)
    coords = np.column_stack((x1, y1, x2, y2))
    return RectSet(coords, copy=False, validate=False)


def point_queries(
    data: RectSet,
    n_queries: int = PAPER_N_QUERIES,
    *,
    seed: SeedLike = None,
    jitter_frac: float = 0.01,
) -> RectSet:
    """Generate a point-query workload (degenerate rectangles).

    Points are data-rectangle centers perturbed by a small jitter (a
    fraction of the MBR extent) and clipped to the MBR, so they probe
    dense areas without always hitting a center exactly.
    """
    if len(data) == 0:
        raise ValueError("cannot generate queries for an empty input")
    if n_queries < 1:
        raise ValueError("n_queries must be at least 1")
    gen = _as_rng(seed)
    mbr = data.mbr()

    centers = data.centers()
    pick = gen.integers(0, len(data), size=n_queries)
    x = centers[pick, 0] + gen.normal(
        0.0, jitter_frac * mbr.width, n_queries
    )
    y = centers[pick, 1] + gen.normal(
        0.0, jitter_frac * mbr.height, n_queries
    )
    np.clip(x, mbr.x1, mbr.x2, out=x)
    np.clip(y, mbr.y1, mbr.y2, out=y)
    coords = np.column_stack((x, y, x, y))
    return RectSet(coords, copy=False, validate=False)


# ----------------------------------------------------------------------
# live (interleaved query / maintenance) workloads
# ----------------------------------------------------------------------

#: Operation kinds of a live workload, in the encoding order used by
#: the generator's seeded draw.
LIVE_OP_KINDS = ("query", "insert", "delete")


@dataclass(frozen=True)
class LiveOp:
    """One operation of an interleaved serving/maintenance workload."""

    kind: str  #: ``"query"``, ``"insert"``, or ``"delete"``
    rect: Rect  #: the query rectangle, or the data rectangle affected


def live_workload(
    data: RectSet,
    qsize: float,
    n_ops: int,
    *,
    seed: SeedLike = None,
    query_frac: float = 0.6,
    insert_frac: float = 0.2,
    bounds: Optional[Rect] = None,
    drift: Tuple[float, float] = (0.0, 0.0),
) -> List[LiveOp]:
    """Generate an interleaved query/insert/delete operation stream.

    Models a table serving estimates while it changes underneath:

    * **queries** follow the paper's biased range-query model (centers
      from *live* data centers, extents ``qsize`` of the MBR side) —
      including centers of rectangles inserted earlier in the stream,
      so the workload keeps probing where the data currently lives;
    * **inserts** clone a random live rectangle and translate it by a
      jitter of up to 10 % of the MBR extent (clipped to the MBR), so
      the distribution drifts without leaving the space;
    * ``drift`` adds a *deterministic* per-insert translation bias
      (fraction of the MBR extent per axis) on top of the jitter, so
      the insert stream migrates the hotspot instead of diffusing in
      place — the workload the self-tuning layer is gated on.  The
      bias consumes no RNG draws, so ``drift=(0, 0)`` (the default)
      reproduces the exact pre-drift operation stream byte for byte;
    * **deletes** remove a rectangle chosen uniformly from the current
      live set, so every delete hits — a
      :class:`~repro.core.maintenance.MaintainedHistogram` replaying
      the stream never sees a delete miss.

    The generator mirrors the histogram's multiset state internally, so
    the stream is valid (and, for a fixed seed, byte-deterministic)
    regardless of who replays it.  Deletes are skipped — re-drawn as
    queries — when only one live rectangle remains, so replaying can
    never empty the data set.  The remaining probability mass
    (``1 - query_frac - insert_frac``) is the delete fraction.
    """
    if len(data) == 0:
        raise ValueError("cannot generate a workload for an empty input")
    if not 0.0 < qsize <= 1.0:
        raise ValueError("qsize must be in (0, 1]")
    if n_ops < 1:
        raise ValueError("n_ops must be at least 1")
    delete_frac = 1.0 - query_frac - insert_frac
    if min(query_frac, insert_frac, delete_frac) < 0.0:
        raise ValueError(
            "query_frac + insert_frac must be <= 1 and both >= 0"
        )
    gen = _as_rng(seed)
    mbr = bounds if bounds is not None else data.mbr()
    mean_w = qsize * mbr.width
    mean_h = qsize * mbr.height

    live: List[Tuple[float, float, float, float]] = [
        (float(r[0]), float(r[1]), float(r[2]), float(r[3]))
        for r in data.coords
    ]
    kinds = gen.choice(
        3, size=n_ops, p=(query_frac, insert_frac, delete_frac)
    )
    ops: List[LiveOp] = []
    for kind in kinds:
        if kind == 2 and len(live) <= 1:
            kind = 0
        if kind == 0:
            x1, y1, x2, y2 = live[int(gen.integers(0, len(live)))]
            cx = (x1 + x2) / 2.0
            cy = (y1 + y2) / 2.0
            w = float(gen.uniform(0.5 * mean_w, 1.5 * mean_w))
            h = float(gen.uniform(0.5 * mean_h, 1.5 * mean_h))
            rect = Rect(
                max(cx - w / 2.0, mbr.x1),
                max(cy - h / 2.0, mbr.y1),
                min(cx + w / 2.0, mbr.x2),
                min(cy + h / 2.0, mbr.y2),
            )
            ops.append(LiveOp("query", rect))
        elif kind == 1:
            x1, y1, x2, y2 = live[int(gen.integers(0, len(live)))]
            dx = (
                float(gen.uniform(-0.1, 0.1)) + drift[0]
            ) * mbr.width
            dy = (
                float(gen.uniform(-0.1, 0.1)) + drift[1]
            ) * mbr.height
            w = x2 - x1
            h = y2 - y1
            nx1 = min(max(x1 + dx, mbr.x1), mbr.x2 - w)
            ny1 = min(max(y1 + dy, mbr.y1), mbr.y2 - h)
            row = (nx1, ny1, nx1 + w, ny1 + h)
            live.append(row)
            ops.append(LiveOp("insert", Rect(*row)))
        else:
            pick = int(gen.integers(0, len(live)))
            row = live.pop(pick)
            ops.append(LiveOp("delete", Rect(*row)))
    return ops

"""Query workload generators matching the paper's Section 5.2 model."""

from .queries import (
    CENTER_MODES,
    PAPER_N_QUERIES,
    PAPER_QSIZES,
    point_queries,
    range_queries,
)

__all__ = [
    "range_queries",
    "point_queries",
    "PAPER_QSIZES",
    "PAPER_N_QUERIES",
    "CENTER_MODES",
]

"""Query workload generators matching the paper's Section 5.2 model,
plus the interleaved query/insert/delete streams used by the
live-serving bench."""

from .queries import (
    CENTER_MODES,
    LIVE_OP_KINDS,
    PAPER_N_QUERIES,
    PAPER_QSIZES,
    LiveOp,
    live_workload,
    point_queries,
    range_queries,
)

__all__ = [
    "range_queries",
    "point_queries",
    "live_workload",
    "LiveOp",
    "LIVE_OP_KINDS",
    "PAPER_QSIZES",
    "PAPER_N_QUERIES",
    "CENTER_MODES",
]

"""R-tree node structures.

An R*-tree node holds up to ``max_entries`` entries.  In a leaf node each
entry is an :class:`Entry` wrapping a data rectangle and its integer record
id; in an internal node each entry wraps a child :class:`Node` and the
child's MBR.  Keeping both cases in one ``Entry`` type keeps the insert and
split algorithms free of leaf/internal special cases.
"""

from __future__ import annotations

from typing import List, Optional

from ..geometry import Rect


class Entry:
    """One slot of an R-tree node: a rectangle plus payload.

    ``record_id`` is set for leaf entries (and ``child`` is None);
    ``child`` is set for internal entries (and ``record_id`` is None).
    """

    __slots__ = ("rect", "record_id", "child")

    def __init__(
        self,
        rect: Rect,
        *,
        record_id: Optional[int] = None,
        child: Optional["Node"] = None,
    ) -> None:
        if (record_id is None) == (child is None):
            raise ValueError(
                "an Entry must carry exactly one of record_id / child"
            )
        self.rect = rect
        self.record_id = record_id
        self.child = child

    @property
    def is_leaf_entry(self) -> bool:
        return self.record_id is not None

    def __repr__(self) -> str:
        if self.is_leaf_entry:
            return f"Entry(record={self.record_id}, rect={self.rect})"
        return f"Entry(child, rect={self.rect})"


class Node:
    """An R-tree node at height ``level`` (0 = leaf)."""

    __slots__ = ("level", "entries", "parent")

    def __init__(self, level: int, entries: Optional[List[Entry]] = None):
        self.level = level
        self.entries: List[Entry] = entries if entries is not None else []
        self.parent: Optional["Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        """MBR covering all entries; requires a non-empty node."""
        if not self.entries:
            raise ValueError("empty node has no MBR")
        x1 = min(e.rect.x1 for e in self.entries)
        y1 = min(e.rect.y1 for e in self.entries)
        x2 = max(e.rect.x2 for e in self.entries)
        y2 = max(e.rect.y2 for e in self.entries)
        return Rect(x1, y1, x2, y2)

    def add(self, entry: Entry) -> None:
        """Append an entry, wiring the child's parent pointer."""
        self.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = self

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal(level={self.level})"
        return f"Node({kind}, entries={len(self.entries)})"

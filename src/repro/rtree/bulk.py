"""Sort-Tile-Recursive (STR) bulk loading for the R*-tree.

The paper contrasts repeated insertion (O(N log_B N) I/Os) with bulk
loading (O(N/B log_B N) I/Os) in Section 3.5.  STR (Leutenegger et al.)
packs rectangles by sorting centers on x, slicing into vertical runs, and
sorting each run on y; the resulting leaves are then packed recursively
into upper levels.  The tree produced is fully usable by every
:class:`~repro.rtree.rstar.RStarTree` query method, and the benchmark
harness uses it to build partitionings quickly for large inputs.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..geometry import Rect, RectSet
from .node import Entry, Node
from .rstar import RStarTree


def _pack_level(nodes: List[Node], max_entries: int, level: int) -> List[Node]:
    """Pack ``nodes`` (all at ``level - 1``) into parents at ``level``."""
    count = len(nodes)
    n_parents = math.ceil(count / max_entries)
    n_slices = math.ceil(math.sqrt(n_parents))
    run = n_slices * max_entries  # nodes per vertical slice

    # sort by center x, slice, then sort each slice by center y
    nodes = sorted(nodes, key=lambda n: n.mbr().center[0])
    parents: List[Node] = []
    for s in range(0, count, run):
        chunk = sorted(
            nodes[s:s + run], key=lambda n: n.mbr().center[1]
        )
        for t in range(0, len(chunk), max_entries):
            parent = Node(level=level)
            for child in chunk[t:t + max_entries]:
                parent.add(Entry(child.mbr(), child=child))
            parents.append(parent)
    return parents


def str_bulk_load(
    rects: RectSet, max_entries: int = 16, **tree_kwargs
) -> RStarTree:
    """Build an :class:`RStarTree` over ``rects`` with STR packing.

    Record ids are the row indices of ``rects``.  Accepts the same keyword
    arguments as :class:`RStarTree` (they matter only for later dynamic
    inserts into the returned tree).
    """
    tree = RStarTree(max_entries, **tree_kwargs)
    n = len(rects)
    if n == 0:
        return tree

    centers = rects.centers()
    order_x = np.argsort(centers[:, 0], kind="stable")

    n_leaves = math.ceil(n / max_entries)
    n_slices = math.ceil(math.sqrt(n_leaves))
    run = n_slices * max_entries

    leaves: List[Node] = []
    coords = rects.coords
    for s in range(0, n, run):
        slice_idx = order_x[s:s + run]
        by_y = slice_idx[np.argsort(centers[slice_idx, 1], kind="stable")]
        for t in range(0, len(by_y), max_entries):
            leaf = Node(level=0)
            for i in by_y[t:t + max_entries]:
                row = coords[i]
                leaf.add(
                    Entry(
                        Rect(float(row[0]), float(row[1]), float(row[2]),
                             float(row[3])),
                        record_id=int(i),
                    )
                )
            leaves.append(leaf)

    level = 1
    nodes = leaves
    while len(nodes) > 1:
        nodes = _pack_level(nodes, max_entries, level)
        level += 1

    tree.root = nodes[0]
    tree._size = n
    return tree

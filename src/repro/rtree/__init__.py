"""From-scratch R*-tree: dynamic inserts with forced reinsertion and the
R* topological split, plus STR bulk loading and range search/count."""

from .node import Entry, Node
from .rstar import RStarTree
from .bulk import str_bulk_load

__all__ = ["Entry", "Node", "RStarTree", "str_bulk_load"]

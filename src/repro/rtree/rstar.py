r"""R*-tree implementation (Beckmann, Kriegel, Schneider, Seeger 1990).

The paper (Section 3.4) uses the R*-tree — "known to be one of the most
efficient members of the R-tree family" — both as a spatial index and as a
source of partitionings: the MBRs of internal nodes summarise the data and
become histogram buckets.  This module is a from-scratch implementation of
the dynamic R*-tree with:

* **ChooseSubtree** — minimum overlap enlargement when the children are
  leaves, minimum area enlargement otherwise (ties by area).
* **Forced reinsertion** — on overflow, the 30 % of entries farthest from
  the node center are reinserted once per level per insertion.
* **R\* split** — the split axis minimises the summed margins of all
  candidate distributions; the distribution minimises overlap, ties by
  combined area.
* Range search / range counting, used as one of the exact-count oracles.

The tree stores integer record ids; the caller keeps the actual payloads.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..geometry import Rect, RectSet
from ..obs import OBS
from .node import Entry, Node


def _mbr_of_entries(entries: List[Entry]) -> Rect:
    x1 = min(e.rect.x1 for e in entries)
    y1 = min(e.rect.y1 for e in entries)
    x2 = max(e.rect.x2 for e in entries)
    y2 = max(e.rect.y2 for e in entries)
    return Rect(x1, y1, x2, y2)


class RStarTree:
    """A dynamic R*-tree over 2-D rectangles.

    Parameters
    ----------
    max_entries:
        Node capacity M (>= 4).  The paper tunes this "branching factor"
        to control how many buckets an index level yields (Section 5.4).
    min_fill:
        Minimum node fill as a fraction of ``max_entries`` (the R*-paper
        recommends 0.4).
    reinsert_fraction:
        Fraction of entries to reinsert on first overflow of a level
        (the R*-paper recommends 0.3).
    """

    def __init__(
        self,
        max_entries: int = 16,
        *,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        if not 0.0 < reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must be in (0, 1)")
        self.max_entries = max_entries
        self.min_entries = max(2, int(round(max_entries * min_fill)))
        self.reinsert_count = max(1, int(round(max_entries
                                               * reinsert_fraction)))
        self.root: Node = Node(level=0)
        self._size = 0
        # levels that already overflowed during the current insertion
        # (forced reinsertion happens only once per level per insertion)
        self._overflowed_levels: set = set()
        #: Node-access accounting (one node ≈ one disk page in the
        #: paper's Section 3.5 cost model): reads are nodes visited
        #: while descending or searching, writes are node
        #: creations/modifications from splits and MBR adjustments.
        self.node_reads = 0
        self.node_writes = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        return self.root.level + 1

    def insert(self, rect: Rect, record_id: int) -> None:
        """Insert one data rectangle with its record id."""
        self._overflowed_levels = set()
        self._insert_entry(Entry(rect, record_id=record_id), level=0)
        self._size += 1

    def extend(self, rects: Iterable[Rect], start_id: int = 0) -> None:
        """Insert many rectangles, assigning consecutive record ids."""
        for offset, rect in enumerate(rects):
            self.insert(rect, start_id + offset)

    @classmethod
    def from_rectset(
        cls, rects: RectSet, max_entries: int = 16, **kwargs
    ) -> "RStarTree":
        """Build by repeated insertion from a :class:`RectSet`."""
        tree = cls(max_entries, **kwargs)
        for i in range(len(rects)):
            row = rects.coords[i]
            tree.insert(
                Rect(float(row[0]), float(row[1]), float(row[2]),
                     float(row[3])),
                i,
            )
        return tree

    def search(self, query: Rect) -> List[int]:
        """Record ids of all data rectangles intersecting ``query``."""
        result: List[int] = []
        if self._size == 0:
            return result
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for e in node.entries:
                    if e.rect.intersects(query):
                        result.append(e.record_id)  # type: ignore[arg-type]
            else:
                for e in node.entries:
                    if e.rect.intersects(query):
                        stack.append(e.child)  # type: ignore[arg-type]
        return result

    def count(self, query: Rect) -> int:
        """Exact number of data rectangles intersecting ``query``.

        Subtrees whose MBR is fully contained in the query are counted
        wholesale without descending, which makes large-query counting
        (QSize 25 % in the paper's workloads) far cheaper than ``search``.
        """
        if self._size == 0:
            return 0
        total = 0
        stack: List[Tuple[Node, bool]] = [(self.root, False)]
        while stack:
            node, contained = stack.pop()
            if contained:
                total += self._subtree_size(node)
                continue
            if node.is_leaf:
                for e in node.entries:
                    if e.rect.intersects(query):
                        total += 1
            else:
                for e in node.entries:
                    if not e.rect.intersects(query):
                        continue
                    stack.append(
                        (e.child, query.contains_rect(e.rect))
                    )  # type: ignore[arg-type]
        return total

    def _subtree_size(self, node: Node) -> int:
        if node.is_leaf:
            return len(node.entries)
        return sum(self._subtree_size(e.child) for e in node.entries)

    # ------------------------------------------------------------------
    # traversal helpers (used by the partitioner and tests)
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[Node]:
        """All nodes, pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)

    def nodes_at_level(self, level: int) -> List[Node]:
        """All nodes whose ``level`` equals the argument (0 = leaves)."""
        return [n for n in self.iter_nodes() if n.level == level]

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self.iter_nodes())

    def check_invariants(self, *, allow_underfull: bool = False) -> None:
        """Validate structural invariants; raises AssertionError if broken.

        Checked: entry counts within [min, max] (root exempt), child MBR
        containment, uniform leaf depth, and the recorded size.  Bulk-loaded
        (STR) trees may legitimately contain one underfull node per level;
        pass ``allow_underfull=True`` for those.
        """
        leaf_levels = set()
        count = 0
        stack: List[Tuple[Node, Optional[Rect]]] = [(self.root, None)]
        while stack:
            node, parent_mbr = stack.pop()
            if node is not self.root and not allow_underfull:
                assert len(node.entries) >= self.min_entries, (
                    f"underfull node: {len(node.entries)} < "
                    f"{self.min_entries}"
                )
            assert len(node.entries) <= self.max_entries, "overfull node"
            if node.entries and parent_mbr is not None:
                assert parent_mbr.contains_rect(node.mbr()), (
                    "parent entry MBR does not cover child"
                )
            if node.is_leaf:
                leaf_levels.add(node.level)
                count += len(node.entries)
            else:
                for e in node.entries:
                    assert e.child is not None
                    assert e.child.parent is node, "broken parent pointer"
                    assert e.child.level == node.level - 1, (
                        "child level mismatch"
                    )
                    assert e.rect.contains_rect(e.child.mbr()), (
                        "stale entry MBR"
                    )
                    stack.append((e.child, e.rect))
        assert leaf_levels <= {0}, f"leaves at levels {leaf_levels}"
        assert count == self._size, f"size mismatch: {count} != {self._size}"

    # ------------------------------------------------------------------
    # insertion internals
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: Entry, level: int) -> None:
        node = self._choose_subtree(entry.rect, level)
        node.add(entry)
        if len(node.entries) > self.max_entries:
            self._overflow_treatment(node)
        else:
            self._adjust_path_mbrs(node)

    def reset_io_counters(self) -> None:
        """Zero the node read/write accounting."""
        self.node_reads = 0
        self.node_writes = 0

    def _choose_subtree(self, rect: Rect, level: int) -> Node:
        node = self.root
        self.node_reads += 1
        while node.level > level:
            self.node_reads += 1
            if node.level == level + 1 or node.entries[0].child.is_leaf:
                entry = self._pick_min_overlap_child(node, rect)
            else:
                entry = self._pick_min_enlargement_child(node, rect)
            node = entry.child  # type: ignore[assignment]
        return node

    @staticmethod
    def _pick_min_enlargement_child(node: Node, rect: Rect) -> Entry:
        best = None
        best_key = None
        for e in node.entries:
            key = (e.rect.enlargement(rect), e.rect.area)
            if best_key is None or key < best_key:
                best, best_key = e, key
        return best  # type: ignore[return-value]

    #: ChooseSubtree overlap checks consider only this many candidates
    #: (the R*-paper's "nearly minimum overlap cost" optimisation for
    #: large node sizes).
    CHOOSE_SUBTREE_CANDIDATES = 32

    @staticmethod
    def _pick_min_overlap_child(node: Node, rect: Rect) -> Entry:
        """R* rule for the level above the leaves: minimise overlap
        enlargement, ties by area enlargement, then by area.

        For large nodes only the 32 entries with the least area
        enlargement are examined, as the R*-paper prescribes."""
        entries = node.entries
        if len(entries) > RStarTree.CHOOSE_SUBTREE_CANDIDATES:
            candidates = sorted(
                entries, key=lambda e: e.rect.enlargement(rect)
            )[: RStarTree.CHOOSE_SUBTREE_CANDIDATES]
        else:
            candidates = entries
        best = None
        best_key = None
        for e in candidates:
            grown = e.rect.union(rect)
            overlap_before = 0.0
            overlap_after = 0.0
            for other in entries:
                if other is e:
                    continue
                overlap_before += e.rect.intersection_area(other.rect)
                overlap_after += grown.intersection_area(other.rect)
            key = (
                overlap_after - overlap_before,
                e.rect.enlargement(rect),
                e.rect.area,
            )
            if best_key is None or key < best_key:
                best, best_key = e, key
        return best  # type: ignore[return-value]

    def _overflow_treatment(self, node: Node) -> None:
        if node is not self.root and node.level not in \
                self._overflowed_levels:
            self._overflowed_levels.add(node.level)
            self._reinsert(node)
        else:
            self._split(node)

    def _reinsert(self, node: Node) -> None:
        """Forced reinsertion: remove the p entries whose centers are
        farthest from the node's center and insert them again ("far
        reinsert"), which lets the tree escape bad early placements."""
        center = node.mbr().center
        def dist2(e: Entry) -> float:
            ecx, ecy = e.rect.center
            return (ecx - center[0]) ** 2 + (ecy - center[1]) ** 2

        node.entries.sort(key=dist2)
        spill = node.entries[-self.reinsert_count:]
        del node.entries[-self.reinsert_count:]
        OBS.add("rtree.reinserts")
        OBS.add("rtree.reinserted_entries", len(spill))
        self._adjust_path_mbrs(node)
        for e in spill:
            self._insert_entry(e, node.level)

    def _split(self, node: Node) -> None:
        # one node rewritten, one created, plus the parent update
        self.node_writes += 3
        OBS.add("rtree.splits")
        group_a, group_b = self._rstar_split_groups(node.entries)
        if node is self.root:
            new_root = Node(level=node.level + 1)
            left = Node(level=node.level, entries=group_a)
            right = Node(level=node.level, entries=group_b)
            for child in (left, right):
                for e in child.entries:
                    if e.child is not None:
                        e.child.parent = child
                new_root.add(Entry(child.mbr(), child=child))
            self.root = new_root
            return

        parent = node.parent
        assert parent is not None
        node.entries = group_a
        for e in node.entries:
            if e.child is not None:
                e.child.parent = node
        sibling = Node(level=node.level, entries=group_b)
        for e in sibling.entries:
            if e.child is not None:
                e.child.parent = sibling
        # refresh this node's entry in the parent, then add the sibling
        for pe in parent.entries:
            if pe.child is node:
                pe.rect = node.mbr()
                break
        parent.add(Entry(sibling.mbr(), child=sibling))
        if len(parent.entries) > self.max_entries:
            self._overflow_treatment(parent)
        else:
            self._adjust_path_mbrs(parent)

    def _rstar_split_groups(
        self, entries: List[Entry]
    ) -> Tuple[List[Entry], List[Entry]]:
        """The R* topological split.

        Returns the two entry groups.  Axis choice: minimum summed margin
        over all candidate distributions.  Distribution choice on that
        axis: minimum overlap area, ties broken by minimum combined area.

        Prefix/suffix MBR arrays make every candidate distribution O(1)
        to evaluate, so a split costs O(M log M) for the sorts instead
        of the naive O(M²) — essential at the large branching factors
        the partitioner tunes for (Section 5.4).
        """
        m = self.min_entries
        best_axis = None
        best_axis_margin = None
        for axis in (0, 1):  # 0 = x, 1 = y
            margin_sum = 0.0
            for sorted_entries in self._axis_sortings(entries, axis):
                prefix, suffix = self._running_mbrs(sorted_entries)
                for k in range(m, len(entries) - m + 1):
                    margin_sum += (
                        prefix[k - 1].margin + suffix[k].margin
                    )
            if best_axis_margin is None or margin_sum < best_axis_margin:
                best_axis, best_axis_margin = axis, margin_sum

        best_groups = None
        best_key = None
        for sorted_entries in self._axis_sortings(entries, best_axis):
            prefix, suffix = self._running_mbrs(sorted_entries)
            for k in range(m, len(entries) - m + 1):
                mbr_l = prefix[k - 1]
                mbr_r = suffix[k]
                key = (
                    mbr_l.intersection_area(mbr_r),
                    mbr_l.area + mbr_r.area,
                )
                if best_key is None or key < best_key:
                    best_groups = (
                        list(sorted_entries[:k]),
                        list(sorted_entries[k:]),
                    )
                    best_key = key
        assert best_groups is not None
        return best_groups

    @staticmethod
    def _running_mbrs(
        entries: List[Entry],
    ) -> Tuple[List[Rect], List[Rect]]:
        """``prefix[i]`` = MBR of entries[:i+1]; ``suffix[i]`` of
        entries[i:]."""
        n = len(entries)
        prefix: List[Rect] = [entries[0].rect] * n
        running = entries[0].rect
        for i in range(1, n):
            running = running.union(entries[i].rect)
            prefix[i] = running
        suffix: List[Rect] = [entries[-1].rect] * n
        running = entries[-1].rect
        for i in range(n - 2, -1, -1):
            running = running.union(entries[i].rect)
            suffix[i] = running
        return prefix, suffix

    @staticmethod
    def _axis_sortings(
        entries: List[Entry], axis: int
    ) -> Tuple[List[Entry], List[Entry]]:
        """The two R* sortings of one axis: by lower then by upper value."""
        if axis == 0:
            by_lower = sorted(entries, key=lambda e: (e.rect.x1, e.rect.x2))
            by_upper = sorted(entries, key=lambda e: (e.rect.x2, e.rect.x1))
        else:
            by_lower = sorted(entries, key=lambda e: (e.rect.y1, e.rect.y2))
            by_upper = sorted(entries, key=lambda e: (e.rect.y2, e.rect.y1))
        return by_lower, by_upper

    def _adjust_path_mbrs(self, node: Node) -> None:
        """Tighten the entry MBRs on the path from ``node`` to the root."""
        self.node_writes += 1  # the touched node itself
        current = node
        while current.parent is not None:
            self.node_writes += 1
            parent = current.parent
            for pe in parent.entries:
                if pe.child is current:
                    pe.rect = current.mbr()
                    break
            current = parent

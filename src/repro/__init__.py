"""repro — selectivity estimation in spatial databases.

A complete, from-scratch reproduction of Acharya, Poosala & Ramaswamy,
*Selectivity Estimation in Spatial Databases* (SIGMOD 1999): the
**Min-Skew** spatial histogram with progressive refinement, every
baseline technique the paper compares against (Equi-Area, Equi-Count,
R-Tree, Sample, Uniform, Fractal), the substrates they stand on (an
R*-tree, density grids, exact counting oracles, dataset generators), and
the full experiment harness for the paper's figures and tables.

Quick start::

    from repro import MinSkewPartitioner, BucketEstimator
    from repro.data import charminar
    from repro.workload import range_queries

    data = charminar()                       # 40 000 rectangles
    est = BucketEstimator.build(MinSkewPartitioner(100), data)
    queries = range_queries(data, qsize=0.05, n_queries=100, seed=0)
    print(est.estimate_many(queries)[:5])    # estimated result sizes
"""

from .analysis import lint_paths
from .core import (
    Bucket,
    MinSkewPartitioner,
    MinSkewResult,
    grouping_skew,
    progressive_min_skew,
)
from .estimators import (
    BucketEstimator,
    ExactEstimator,
    FractalEstimator,
    SampleEstimator,
    SelectivityEstimator,
    UniformEstimator,
)
from .eval import (
    ExperimentRunner,
    average_relative_error,
    build_estimator,
)
from .geometry import Rect, RectSet
from .grid import DensityGrid
from .obs import OBS, MetricsRegistry
from .partitioners import (
    EquiAreaPartitioner,
    EquiCountPartitioner,
    Partitioner,
    RTreePartitioner,
)
from .rtree import RStarTree, str_bulk_load
from .workload import point_queries, range_queries

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geometry
    "Rect",
    "RectSet",
    # core contribution
    "Bucket",
    "MinSkewPartitioner",
    "MinSkewResult",
    "progressive_min_skew",
    "grouping_skew",
    # partitioners
    "Partitioner",
    "EquiAreaPartitioner",
    "EquiCountPartitioner",
    "RTreePartitioner",
    # estimators
    "SelectivityEstimator",
    "BucketEstimator",
    "UniformEstimator",
    "SampleEstimator",
    "FractalEstimator",
    "ExactEstimator",
    # substrates
    "RStarTree",
    "str_bulk_load",
    "DensityGrid",
    # observability
    "OBS",
    "MetricsRegistry",
    # static analysis
    "lint_paths",
    # workload + eval
    "range_queries",
    "point_queries",
    "ExperimentRunner",
    "build_estimator",
    "average_relative_error",
]

"""Axis-aligned rectangle primitives.

The paper's data model (Section 2) is a distribution ``T`` of N
two-dimensional rectangles ``r_i = [(x1, y1), (x2, y2)]`` where the two
corners are the lower-left and upper-right corners.  :class:`Rect` is the
scalar building block used throughout the library; bulk storage lives in
:class:`repro.geometry.rectset.RectSet`, which keeps corner coordinates in
numpy arrays.

Rectangles are *closed*: two rectangles that merely touch along an edge or
at a corner are considered intersecting, which matches the paper's
definition of the result size |Q| as "the number of rectangles in the input
that have a non-empty intersection with the query rectangle".

Degenerate rectangles (zero width and/or height) are valid: a point query
is simply a rectangle with ``x1 == x2`` and ``y1 == y2`` (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .validate import validate_extent


@dataclass(frozen=True)
class Rect:
    """A closed, axis-aligned rectangle ``[(x1, y1), (x2, y2)]``.

    Attributes
    ----------
    x1, y1:
        Lower-left corner.
    x2, y2:
        Upper-right corner.  Must satisfy ``x2 >= x1`` and ``y2 >= y1``.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        validate_extent(self.x1, self.y1, self.x2, self.y2)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_center(
        cls, cx: float, cy: float, width: float, height: float
    ) -> "Rect":
        """Build a rectangle from its center point and full extents."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        """A degenerate rectangle representing the point ``(x, y)``."""
        return cls(x, y, x, y)

    # ------------------------------------------------------------------
    # basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Perimeter half-sum (the R*-tree 'margin' measure)."""
        return self.width + self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def is_point(self) -> bool:
        return self.x1 == self.x2 and self.y1 == self.y2

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least one point."""
        return (
            self.x1 <= other.x2
            and self.x2 >= other.x1
            and self.y1 <= other.y2
            and self.y2 >= other.y1
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies in the closed rectangle."""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside ``self`` (closed)."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    # ------------------------------------------------------------------
    # combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect":
        """The overlap rectangle; raises ValueError if disjoint."""
        if not self.intersects(other):
            raise ValueError(f"{self} and {other} do not intersect")
        return Rect(
            max(self.x1, other.x1),
            max(self.y1, other.y1),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of overlap with ``other`` (0.0 if disjoint)."""
        dx = min(self.x2, other.x2) - max(self.x1, other.x1)
        dy = min(self.y2, other.y2) - max(self.y1, other.y1)
        if dx < 0 or dy < 0:
            return 0.0
        return dx * dy

    def union(self, other: "Rect") -> "Rect":
        """Minimum bounding rectangle of the two rectangles."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def enlargement(self, other: "Rect") -> float:
        """Extra area needed to grow ``self`` to also cover ``other``."""
        return self.union(other).area - self.area

    def expanded(self, dx: float, dy: float) -> "Rect":
        """Grow by ``dx`` on each horizontal side and ``dy`` vertically.

        Negative values shrink the rectangle; the result is clamped so it
        never inverts (collapses to its own center line instead).
        """
        cx, cy = self.center
        new_x1 = min(self.x1 - dx, cx)
        new_x2 = max(self.x2 + dx, cx)
        new_y1 = min(self.y1 - dy, cy)
        new_y2 = max(self.y2 + dy, cy)
        return Rect(new_x1, new_y1, new_x2, new_y2)

    def clamped(self, bounds: "Rect") -> "Rect":
        """Clip this rectangle to ``bounds`` (they must overlap)."""
        return self.intersection(bounds)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[float, float, float, float]:
        """The rectangle as ``(x1, y1, x2, y2)``."""
        return (self.x1, self.y1, self.x2, self.y2)

    def __iter__(self) -> Iterator[float]:
        return iter(self.as_tuple())


def mbr_of(rects: "list[Rect]") -> Rect:
    """Minimum bounding rectangle of a non-empty sequence of rectangles."""
    if not rects:
        raise ValueError("mbr_of() requires at least one rectangle")
    x1 = min(r.x1 for r in rects)
    y1 = min(r.y1 for r in rects)
    x2 = max(r.x2 for r in rects)
    y2 = max(r.y2 for r in rects)
    return Rect(x1, y1, x2, y2)

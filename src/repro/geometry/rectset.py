"""Columnar storage for large rectangle collections.

The paper's datasets range from 40 000 (Charminar) to 414 442 (NJ Road)
rectangles, so per-object Python instances are far too slow for density
sweeps and exact counting.  :class:`RectSet` keeps the four corner
coordinates in a single ``(N, 4)`` float64 numpy array with columns
``(x1, y1, x2, y2)`` and exposes vectorised bulk operations.

All summary statistics the paper's formulas use — the dataset MBR
``Area(T)``, the total rectangle area ``TA``, and the average extents
``W_avg`` / ``H_avg`` (Section 2) — are computed here.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence, Union

import numpy as np
import numpy.typing as npt

from .rect import Rect
from .validate import validate_coords_array

ArrayLike = Union["npt.NDArray[np.float64]", Sequence[Sequence[float]]]


class RectSet:
    """An immutable set of N closed, axis-aligned rectangles.

    Parameters
    ----------
    coords:
        ``(N, 4)`` array-like with columns ``(x1, y1, x2, y2)``.
    copy:
        Copy the input data (default).  When ``False`` the caller promises
        not to mutate the array afterwards.
    validate:
        Check that every rectangle has non-negative extent and finite
        coordinates.  Disable only for trusted, internally-generated data.
    """

    __slots__ = ("_coords",)

    def __init__(
        self, coords: ArrayLike, *, copy: bool = True, validate: bool = True
    ) -> None:
        arr = np.asarray(coords, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 4:
            raise ValueError(
                f"expected an (N, 4) array of (x1, y1, x2, y2); "
                f"got shape {arr.shape}"
            )
        if copy:
            arr = arr.copy()
        if validate and arr.size:
            validate_coords_array(arr)
        arr.setflags(write=False)
        self._coords = arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "RectSet":
        """Build from an iterable of :class:`Rect` objects."""
        data = [r.as_tuple() for r in rects]
        if not data:
            return cls.empty()
        return cls(np.asarray(data, dtype=np.float64), copy=False,
                   validate=False)

    @classmethod
    def from_centers(
        cls,
        cx: npt.ArrayLike,
        cy: npt.ArrayLike,
        widths: npt.ArrayLike,
        heights: npt.ArrayLike,
    ) -> "RectSet":
        """Build from per-rectangle centers and full extents."""
        cx = np.asarray(cx, dtype=np.float64)
        cy = np.asarray(cy, dtype=np.float64)
        widths = np.asarray(widths, dtype=np.float64)
        heights = np.asarray(heights, dtype=np.float64)
        if np.any(widths < 0) or np.any(heights < 0):
            raise ValueError("extents must be non-negative")
        half_w = widths / 2.0
        half_h = heights / 2.0
        coords = np.column_stack(
            (cx - half_w, cy - half_h, cx + half_w, cy + half_h)
        )
        return cls(coords, copy=False, validate=False)

    @classmethod
    def empty(cls) -> "RectSet":
        return cls(np.empty((0, 4), dtype=np.float64), copy=False,
                   validate=False)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._coords.shape[0]

    def __getitem__(self, index: int) -> Rect:
        x1, y1, x2, y2 = self._coords[index]
        return Rect(float(x1), float(y1), float(x2), float(y2))

    def __iter__(self) -> Iterator[Rect]:
        for row in self._coords:
            yield Rect(float(row[0]), float(row[1]), float(row[2]),
                       float(row[3]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectSet):
            return NotImplemented
        return np.array_equal(self._coords, other._coords)

    def __repr__(self) -> str:
        return f"RectSet(n={len(self)})"

    # ------------------------------------------------------------------
    # columnar views
    # ------------------------------------------------------------------
    @property
    def coords(self) -> npt.NDArray[np.float64]:
        """Read-only ``(N, 4)`` view of ``(x1, y1, x2, y2)``."""
        return self._coords

    @property
    def x1(self) -> npt.NDArray[np.float64]:
        return self._coords[:, 0]

    @property
    def y1(self) -> npt.NDArray[np.float64]:
        return self._coords[:, 1]

    @property
    def x2(self) -> npt.NDArray[np.float64]:
        return self._coords[:, 2]

    @property
    def y2(self) -> npt.NDArray[np.float64]:
        return self._coords[:, 3]

    @property
    def widths(self) -> npt.NDArray[np.float64]:
        return self.x2 - self.x1

    @property
    def heights(self) -> npt.NDArray[np.float64]:
        return self.y2 - self.y1

    @property
    def areas(self) -> npt.NDArray[np.float64]:
        return self.widths * self.heights

    def centers(self) -> npt.NDArray[np.float64]:
        """``(N, 2)`` array of rectangle centers."""
        cx = (self.x1 + self.x2) / 2.0
        cy = (self.y1 + self.y2) / 2.0
        return np.column_stack((cx, cy))

    # ------------------------------------------------------------------
    # dataset-level statistics (Section 2 notation)
    # ------------------------------------------------------------------
    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the whole distribution T."""
        if len(self) == 0:
            raise ValueError("empty RectSet has no MBR")
        return Rect(
            float(self.x1.min()),
            float(self.y1.min()),
            float(self.x2.max()),
            float(self.y2.max()),
        )

    def total_area(self) -> float:
        """TA: the sum of areas of all rectangles."""
        return float(self.areas.sum())

    def avg_width(self) -> float:
        """W_avg (0.0 for an empty set)."""
        return float(self.widths.mean()) if len(self) else 0.0

    def avg_height(self) -> float:
        """H_avg (0.0 for an empty set)."""
        return float(self.heights.mean()) if len(self) else 0.0

    # ------------------------------------------------------------------
    # bulk queries
    # ------------------------------------------------------------------
    def intersects_mask(self, query: Rect) -> npt.NDArray[np.bool_]:
        """Boolean mask of rectangles intersecting ``query`` (closed)."""
        c = self._coords
        return (
            (c[:, 0] <= query.x2)
            & (c[:, 2] >= query.x1)
            & (c[:, 1] <= query.y2)
            & (c[:, 3] >= query.y1)
        )

    def count_intersecting(self, query: Rect) -> int:
        """Exact |Q| for a single query (vectorised scan)."""
        return int(self.intersects_mask(query).sum())

    def select(self, mask_or_indices: "npt.NDArray[Any]") -> "RectSet":
        """Subset by boolean mask or index array."""
        return RectSet(self._coords[mask_or_indices], copy=True,
                       validate=False)

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> "RectSet":
        """Uniform random sample without replacement of ``n`` rectangles."""
        if n < 0:
            raise ValueError("sample size must be non-negative")
        n = min(n, len(self))
        idx = rng.choice(len(self), size=n, replace=False)
        return self.select(idx)

    def concat(self, other: "RectSet") -> "RectSet":
        """Concatenate two rectangle sets."""
        return RectSet(
            np.vstack((self._coords, other._coords)), copy=False,
            validate=False,
        )

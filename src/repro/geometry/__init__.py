"""Rectangle geometry kernel: scalar :class:`Rect` and columnar
:class:`RectSet` primitives used by every other subsystem, plus the
single validation helper every input check routes through."""

from .rect import Rect, mbr_of
from .rectset import RectSet
from .validate import (
    require_nonempty,
    validate_coords_array,
    validate_extent,
)

__all__ = [
    "Rect",
    "RectSet",
    "mbr_of",
    "validate_extent",
    "validate_coords_array",
    "require_nonempty",
]

"""Rectangle geometry kernel: scalar :class:`Rect` and columnar
:class:`RectSet` primitives used by every other subsystem."""

from .rect import Rect, mbr_of
from .rectset import RectSet

__all__ = ["Rect", "RectSet", "mbr_of"]

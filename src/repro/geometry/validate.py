"""One validation helper for degenerate-rectangle handling.

Every subsystem that accepts rectangles — the scalar :class:`Rect`
constructor, the columnar :class:`RectSet` constructor, the estimators,
and the guarded pipeline in :mod:`repro.resilience` — routes its input
checks through this module, so "what counts as a valid rectangle" is
defined exactly once:

* coordinates must be **finite** (NaN/inf rejected),
* extents must be **non-negative** (``x2 >= x1`` and ``y2 >= y1``; an
  inverted rectangle is rejected, not silently normalised),
* **zero-area** rectangles are valid — a point query is a degenerate
  rectangle (paper Section 2).

Violations raise :class:`repro.errors.GeometryError`, which is also a
:class:`ValueError` for backward compatibility.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
import numpy.typing as npt

from ..errors import EmptyInputError, GeometryError

__all__ = [
    "validate_extent",
    "validate_coords_array",
    "require_nonempty",
]


def validate_extent(
    x1: float, y1: float, x2: float, y2: float, *, what: str = "rectangle"
) -> Tuple[float, float, float, float]:
    """Validate one ``(x1, y1, x2, y2)`` extent; returns it unchanged.

    Raises :class:`GeometryError` on NaN/inf coordinates or an inverted
    extent.  ``what`` names the offender in the message ("query",
    "bucket box", ...).
    """
    if not (
        math.isfinite(x1) and math.isfinite(y1)
        and math.isfinite(x2) and math.isfinite(y2)
    ):
        raise GeometryError(
            f"{what} coordinates must be finite, got "
            f"({x1}, {y1}, {x2}, {y2})",
            hint="drop or repair non-finite rows before querying",
        )
    if x2 < x1 or y2 < y1:
        raise GeometryError(
            f"invalid {what}: ({x1}, {y1}, {x2}, {y2}) has negative "
            f"extent",
            hint="corners must be (lower-left, upper-right); swap the "
                 "inverted axis",
        )
    return (x1, y1, x2, y2)


def validate_coords_array(
    coords: npt.NDArray[np.float64], *, what: str = "rectangle"
) -> npt.NDArray[np.float64]:
    """Vectorised :func:`validate_extent` over an ``(N, 4)`` array.

    Returns the array unchanged; raises :class:`GeometryError` naming
    the first offending row.
    """
    if coords.size == 0:
        return coords
    finite = np.isfinite(coords)
    if not finite.all():
        first = int(np.flatnonzero(~finite.all(axis=1))[0])
        raise GeometryError(
            f"{what} {first} has non-finite coordinates: "
            f"{coords[first]}",
            hint="drop or repair non-finite rows before querying",
        )
    inverted = (coords[:, 2] < coords[:, 0]) \
        | (coords[:, 3] < coords[:, 1])
    if inverted.any():
        first = int(np.flatnonzero(inverted)[0])
        raise GeometryError(
            f"{what} {first} has negative extent: {coords[first]}",
            hint="corners must be (lower-left, upper-right); swap the "
                 "inverted axis",
        )
    return coords


def require_nonempty(n: int, *, what: str = "distribution") -> int:
    """Require at least one rectangle; returns ``n`` unchanged.

    Raises :class:`EmptyInputError` (a :class:`ValueError`) otherwise.
    """
    if n <= 0:
        raise EmptyInputError(
            f"cannot summarise an empty {what}",
            hint="load or generate a non-empty dataset first",
        )
    return n

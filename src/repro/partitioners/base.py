"""Partitioner interface shared by all grouping techniques.

A partitioner turns an input distribution into a list of
:class:`~repro.core.bucket.Bucket` summaries; the generic
:class:`~repro.estimators.bucket_estimator.BucketEstimator` then answers
queries from those buckets.  Keeping "how to group" (this hierarchy)
separate from "how to estimate" (the bucket formulas) mirrors the paper's
Section 3.2 split of the two issues.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from ..core.bucket import Bucket
from ..geometry import Rect, RectSet


class Partitioner(abc.ABC):
    """Builds a bucket grouping for an input distribution."""

    #: Human-readable technique name used in experiment reports.
    name: str = "partitioner"

    def __init__(self, n_buckets: int) -> None:
        if n_buckets < 1:
            raise ValueError("n_buckets must be at least 1")
        self.n_buckets = n_buckets

    @abc.abstractmethod
    def partition(
        self, rects: RectSet, *, bounds: Optional[Rect] = None
    ) -> List[Bucket]:
        """Group ``rects`` into at most ``self.n_buckets`` buckets.

        ``bounds`` overrides the space partitioned (defaults to the
        dataset MBR).  Implementations must never *exceed* the bucket
        quota — the paper is explicit that the R-tree technique, for
        example, stays under it to keep comparisons fair.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_buckets={self.n_buckets})"

"""R-tree index based grouping (paper Section 3.4).

"Partitions produced by R-trees can be used to summarize the input data
well using the MBRs of the internal nodes."  The paper controls the
bucket count "by tweaking the branching factor to produce close to the
number we desired but ensuring we never exceeded the allocated quota".

This partitioner does the same: it picks a branching factor so that some
tree level is predicted to hold close to (but never more than)
``n_buckets`` nodes, builds an R*-tree over the data, selects the deepest
level whose node count fits the quota, and summarises each node's subtree
as one bucket.  Because every data rectangle lives in exactly one leaf,
the node subtrees partition the input even though their MBRs may overlap
spatially.

``method="insert"`` builds by repeated R* insertion (the paper's
construction, with its characteristic cost growth — Table 1);
``method="str"`` bulk-loads with STR for large-scale runs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.bucket import Bucket
from ..geometry import Rect, RectSet
from ..obs import OBS
from ..rtree import Node, RStarTree, str_bulk_load
from .base import Partitioner

_METHODS = ("insert", "str")


class RTreePartitioner(Partitioner):
    """Buckets from the internal-node MBRs of an R*-tree."""

    name = "R-Tree"

    def __init__(
        self,
        n_buckets: int,
        *,
        method: str = "insert",
        max_entries: Optional[int] = None,
    ) -> None:
        super().__init__(n_buckets)
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; choose from {_METHODS}"
            )
        self.method = method
        self.max_entries = max_entries

    # ------------------------------------------------------------------
    def partition(
        self, rects: RectSet, *, bounds: Optional[Rect] = None
    ) -> List[Bucket]:
        if len(rects) == 0:
            raise ValueError("cannot partition an empty distribution")
        fanout = self.max_entries or self._tune_fanout(len(rects))
        with OBS.timer("rtree.build"):
            if self.method == "str":
                tree = str_bulk_load(rects, fanout)
            else:
                tree = RStarTree.from_rectset(rects, fanout)
        if OBS.enabled:
            OBS.add("rtree.node_reads", tree.node_reads)
            OBS.add("rtree.node_writes", tree.node_writes)
            OBS.add("rtree.nodes", tree.node_count())
            OBS.observe("rtree.height", tree.height)
        with OBS.timer("rtree.summarise"):
            nodes = self._pick_level(tree)
            return [self._summarise(rects, node) for node in nodes]

    # ------------------------------------------------------------------
    def _tune_fanout(self, n: int) -> int:
        """Branching factor M so some level lands near the quota.

        For height k above the leaves, the node count is roughly
        ``N / f**k`` with effective fanout ``f`` (≈ 0.7·M for dynamic
        insertion, ≈ M for STR).  We test k = 1..6, derive the M that
        makes the count match the quota, and among candidates whose
        prediction lands within 30 % of the quota prefer the *smallest*
        M (deeper trees keep insertion splits cheap); otherwise keep
        the feasible M whose prediction is closest to (without
        exceeding) ``n_buckets``.
        """
        fill = 0.7 if self.method == "insert" else 1.0
        best_m = 16
        best_gap = None
        close = []  # (m, gap) with gap within 30% of quota
        for k in range(1, 7):
            f = (n / self.n_buckets) ** (1.0 / k)
            m = int(np.ceil(f / fill))
            if m < 4 or m > 512:
                continue
            predicted = int(np.ceil(n / (m * fill) ** k))
            if predicted > self.n_buckets:
                m += 1  # nudge under the quota
                predicted = int(np.ceil(n / (m * fill) ** k))
                if predicted > self.n_buckets:
                    continue
            gap = self.n_buckets - predicted
            if gap <= 0.3 * self.n_buckets:
                close.append((m, gap))
            if best_gap is None or gap < best_gap:
                best_m, best_gap = m, gap
        if close:
            return min(close)[0]
        return best_m

    def _pick_level(self, tree: RStarTree) -> List[Node]:
        """Deepest level whose node count does not exceed the quota."""
        for level in range(tree.root.level + 1):
            nodes = tree.nodes_at_level(level)
            if len(nodes) <= self.n_buckets:
                return nodes
        return [tree.root]

    @staticmethod
    def _summarise(rects: RectSet, node: Node) -> Bucket:
        """One bucket from a node: subtree MBR plus member statistics."""
        record_ids: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                record_ids.extend(
                    e.record_id for e in current.entries
                )
            else:
                stack.extend(e.child for e in current.entries)
        if not record_ids:
            return Bucket(node.mbr() if node.entries else
                          Rect(0.0, 0.0, 0.0, 0.0), 0)
        members = rects.select(np.asarray(record_ids, dtype=np.int64))
        return Bucket.from_members(node.mbr(), members)

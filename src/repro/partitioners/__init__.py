"""Bucket-grouping techniques: the equi-partitionings and index-based
grouping of paper Section 3, plus the shared :class:`Partitioner` base.
Min-Skew itself lives in :mod:`repro.core` (it is the contribution)."""

from .base import Partitioner
from .equi_area import EquiAreaPartitioner
from .equi_count import EquiCountPartitioner
from .fixed_grid import FixedGridPartitioner
from .rtree_partitioner import RTreePartitioner

__all__ = [
    "Partitioner",
    "EquiAreaPartitioner",
    "EquiCountPartitioner",
    "FixedGridPartitioner",
    "RTreePartitioner",
]

"""Fixed-grid (equi-width) partitioning — the naive spatial histogram.

Not one of the paper's named techniques, but the obvious first thing a
relational engine would try: tile the MBR with a uniform G×G grid and
make every tile a bucket.  It is the two-dimensional analogue of the
equi-width histogram the paper's Equi-Area method generalises (Equi-Area
degenerates to this when member MBRs are never recomputed), and it is a
useful control in experiments: it shares Min-Skew's box-shaped disjoint
buckets but spends them with no regard for the data, so the gap between
"Grid" and "Min-Skew" isolates the value of skew-aware placement.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..core.bucket import Bucket
from ..geometry import Rect, RectSet
from .base import Partitioner


class FixedGridPartitioner(Partitioner):
    """Uniform G×G tiling of the input MBR.

    The grid shape is the largest ``gx × gy`` (cells roughly square in
    data space) that fits in the bucket quota; empty tiles still occupy
    buckets, exactly like the naive histogram they model.
    """

    name = "Grid"

    def partition(
        self, rects: RectSet, *, bounds: Optional[Rect] = None
    ) -> List[Bucket]:
        if len(rects) == 0:
            raise ValueError("cannot partition an empty distribution")
        space = bounds if bounds is not None else rects.mbr()
        if space.area <= 0:
            return [Bucket.from_members(space, rects)]

        aspect = space.width / space.height
        gx = min(self.n_buckets,
                 max(1, int(math.sqrt(self.n_buckets * aspect))))
        gy = max(1, self.n_buckets // gx)
        while gx * gy > self.n_buckets:  # pragma: no cover - safety
            gx -= 1

        cell_w = space.width / gx
        cell_h = space.height / gy

        centers = rects.centers()
        ix = np.floor((centers[:, 0] - space.x1) / cell_w).astype(np.int64)
        iy = np.floor((centers[:, 1] - space.y1) / cell_h).astype(np.int64)
        np.clip(ix, 0, gx - 1, out=ix)
        np.clip(iy, 0, gy - 1, out=iy)
        cell = ix * gy + iy

        n_cells = gx * gy
        counts = np.bincount(cell, minlength=n_cells)
        sum_w = np.bincount(cell, weights=rects.widths,
                            minlength=n_cells)
        sum_h = np.bincount(cell, weights=rects.heights,
                            minlength=n_cells)
        sum_area = np.bincount(cell, weights=rects.areas,
                               minlength=n_cells)

        buckets: List[Bucket] = []
        for gx_i in range(gx):
            for gy_i in range(gy):
                i = gx_i * gy + gy_i
                x1 = space.x1 + gx_i * cell_w
                y1 = space.y1 + gy_i * cell_h
                box = Rect(x1, y1, x1 + cell_w, y1 + cell_h)
                c = int(counts[i])
                if c == 0:
                    buckets.append(Bucket(box, 0))
                else:
                    buckets.append(
                        Bucket(
                            box,
                            c,
                            avg_width=float(sum_w[i] / c),
                            avg_height=float(sum_h[i] / c),
                            avg_density=float(sum_area[i] / box.area),
                        )
                    )
        return buckets

"""Equi-Area grouping (paper Section 3.3).

"The goal of the Equi-Area grouping is to create buckets whose MBRs have
the same area. ... We construct the partitioning by starting with a
single bucket consisting of the MBR of all the input rectangles.  The MBR
of the bucket is split along the longer dimension into two equal halves.
Rectangles are grouped into the two halves based on where their centers
lie.  MBRs are calculated for the two new buckets and once again the
longest dimension (among the four choices available now) is chosen and
the corresponding bucket split. ... The recalculation of the MBRs ensures
that the buckets produced try to approximate the input data distribution
rather than simply sub-divide the MBR of the whole input."

The one case the paper leaves open — a midpoint split that leaves one
half empty (possible once MBRs have been recomputed around clustered
data) — falls back to a median-of-centers split so the construction
always makes progress; a bucket whose centers coincide on both axes is
unsplittable and is skipped.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.bucket import Bucket
from ..geometry import Rect, RectSet
from ..obs import OBS
from .base import Partitioner


class _WorkBucket:
    """A bucket under construction: member indices plus their MBR."""

    __slots__ = ("indices", "mbr", "splittable")

    def __init__(self, indices: np.ndarray, mbr: Rect) -> None:
        self.indices = indices
        self.mbr = mbr
        self.splittable = indices.size >= 2

    def longest_side(self) -> float:
        return max(self.mbr.width, self.mbr.height)


def _member_mbr(rects: RectSet, indices: np.ndarray) -> Rect:
    coords = rects.coords[indices]
    return Rect(
        float(coords[:, 0].min()),
        float(coords[:, 1].min()),
        float(coords[:, 2].max()),
        float(coords[:, 3].max()),
    )


def _median_split_value(values: np.ndarray) -> Optional[float]:
    """A split value giving two non-empty parts (None if impossible).

    Members with ``value < split`` go left, the rest right; the value is
    chosen among the distinct coordinates so both sides are non-empty
    and as balanced as possible.
    """
    unique = np.unique(values)
    if unique.size < 2:
        return None
    target = values.size / 2.0
    below = np.searchsorted(values[np.argsort(values)], unique[1:],
                            side="left")
    best = int(np.argmin(np.abs(below - target)))
    return float(unique[1:][best])


class EquiAreaPartitioner(Partitioner):
    """Recursive halving of the longest bucket side."""

    name = "Equi-Area"

    def partition(
        self, rects: RectSet, *, bounds: Optional[Rect] = None
    ) -> List[Bucket]:
        if len(rects) == 0:
            raise ValueError("cannot partition an empty distribution")
        centers = rects.centers()
        all_indices = np.arange(len(rects), dtype=np.int64)
        root_mbr = bounds if bounds is not None else rects.mbr()
        buckets: List[_WorkBucket] = [_WorkBucket(all_indices, root_mbr)]

        n_splits = 0
        while len(buckets) < self.n_buckets:
            candidate = self._pick_bucket(buckets)
            if candidate is None:
                break
            halves = self._split_bucket(rects, centers, candidate)
            if halves is None:
                candidate.splittable = False
                continue
            n_splits += 1
            buckets.remove(candidate)
            buckets.extend(halves)
        OBS.add("equi_area.splits", n_splits)

        return [
            Bucket.from_members(b.mbr, rects.select(b.indices))
            for b in buckets
        ]

    @staticmethod
    def _pick_bucket(
        buckets: List[_WorkBucket],
    ) -> Optional[_WorkBucket]:
        """The splittable bucket with the longest MBR side."""
        best = None
        for b in buckets:
            if not b.splittable:
                continue
            if best is None or b.longest_side() > best.longest_side():
                best = b
        return best

    @staticmethod
    def _split_bucket(
        rects: RectSet, centers: np.ndarray, bucket: _WorkBucket
    ) -> Optional[List[_WorkBucket]]:
        """Split at the midpoint of the longer dimension.

        Falls back to a median-of-centers split when the midpoint leaves
        one half empty; returns None when the bucket cannot be split.
        """
        axis = 0 if bucket.mbr.width >= bucket.mbr.height else 1
        values = centers[bucket.indices, axis]
        lo = (bucket.mbr.x1, bucket.mbr.y1)[axis]
        hi = (bucket.mbr.x2, bucket.mbr.y2)[axis]
        mid = (lo + hi) / 2.0

        left_mask = values < mid
        if not left_mask.any() or left_mask.all():
            # midpoint failed on this axis: try median there, then the
            # other axis
            for try_axis in (axis, 1 - axis):
                vals = centers[bucket.indices, try_axis]
                split = _median_split_value(vals)
                if split is not None:
                    left_mask = vals < split
                    break
            else:
                return None

        left_idx = bucket.indices[left_mask]
        right_idx = bucket.indices[~left_mask]
        return [
            _WorkBucket(left_idx, _member_mbr(rects, left_idx)),
            _WorkBucket(right_idx, _member_mbr(rects, right_idx)),
        ]

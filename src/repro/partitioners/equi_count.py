"""Equi-Count grouping (paper Section 3.3).

"In an Equi-Count grouping, the goal is to create buckets containing the
same number of rectangles. ... The algorithm ... is similar to the
algorithm for Equi-Area with one difference: the dimension with the
highest projected rectangle count is chosen for splitting.  The projected
rectangle count of a dimension d in bucket B is the number of distinct
centers of all the rectangles in the bucket when projected on dimension
d."

Each step therefore: (1) picks, over all buckets and both dimensions,
the (bucket, dimension) pair with the highest projected count; (2) splits
that bucket at a center coordinate chosen so the two halves hold as close
to equal numbers of rectangles as possible; (3) recomputes the two member
MBRs, exactly as Equi-Area does.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.bucket import Bucket
from ..geometry import Rect, RectSet
from ..obs import OBS
from .base import Partitioner
from .equi_area import _median_split_value, _member_mbr


class _WorkBucket:
    """Bucket under construction with cached projected counts."""

    __slots__ = ("indices", "mbr", "distinct_x", "distinct_y")

    def __init__(
        self, indices: np.ndarray, mbr: Rect, centers: np.ndarray
    ) -> None:
        self.indices = indices
        self.mbr = mbr
        self.distinct_x = int(
            np.unique(centers[indices, 0]).size
        )
        self.distinct_y = int(
            np.unique(centers[indices, 1]).size
        )

    def best_axis(self) -> Tuple[int, int]:
        """(projected count, axis) of the more splittable dimension."""
        if self.distinct_x >= self.distinct_y:
            return self.distinct_x, 0
        return self.distinct_y, 1


class EquiCountPartitioner(Partitioner):
    """Median splits along the dimension of highest projected count."""

    name = "Equi-Count"

    def partition(
        self, rects: RectSet, *, bounds: Optional[Rect] = None
    ) -> List[Bucket]:
        if len(rects) == 0:
            raise ValueError("cannot partition an empty distribution")
        centers = rects.centers()
        all_indices = np.arange(len(rects), dtype=np.int64)
        root_mbr = bounds if bounds is not None else rects.mbr()
        buckets: List[_WorkBucket] = [
            _WorkBucket(all_indices, root_mbr, centers)
        ]

        n_splits = 0
        while len(buckets) < self.n_buckets:
            picked = self._pick(buckets)
            if picked is None:
                break
            bucket, axis = picked
            halves = self._split(rects, centers, bucket, axis)
            if halves is None:
                # degenerate on the chosen axis; the pick loop will not
                # offer it again because its distinct count is 1
                break
            n_splits += 1
            buckets.remove(bucket)
            buckets.extend(halves)
        OBS.add("equi_count.splits", n_splits)
        return [
            Bucket.from_members(b.mbr, rects.select(b.indices))
            for b in buckets
        ]

    @staticmethod
    def _pick(
        buckets: List[_WorkBucket],
    ) -> Optional[Tuple[_WorkBucket, int]]:
        """Bucket and axis with the globally highest projected count."""
        best: Optional[Tuple[_WorkBucket, int]] = None
        best_count = 1  # a projected count of 1 cannot be split
        for b in buckets:
            count, axis = b.best_axis()
            if count > best_count:
                best, best_count = (b, axis), count
        return best

    @staticmethod
    def _split(
        rects: RectSet,
        centers: np.ndarray,
        bucket: _WorkBucket,
        axis: int,
    ) -> Optional[List[_WorkBucket]]:
        values = centers[bucket.indices, axis]
        split = _median_split_value(values)
        if split is None:
            return None
        left_mask = values < split
        left_idx = bucket.indices[left_mask]
        right_idx = bucket.indices[~left_mask]
        return [
            _WorkBucket(left_idx, _member_mbr(rects, left_idx), centers),
            _WorkBucket(right_idx, _member_mbr(rects, right_idx), centers),
        ]

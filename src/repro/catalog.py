"""Statistics catalog: persist and reload compact data summaries.

Database systems keep optimizer statistics in a catalog ("a few hundred
bytes per relation", Section 1).  This module gives the reproduction
that last production piece:

* :func:`pack_buckets` / :func:`unpack_buckets` — the paper's exact
  binary layout: eight 32-bit words per bucket (bounding box, average
  density, count, average width, average height), so a 100-bucket
  Min-Skew summary costs 3 200 bytes on disk, matching the Section 5.4
  space accounting;
* JSON export for humans and other tools;
* :class:`StatisticsCatalog` — a tiny on-disk catalog mapping attribute
  names to summaries, the shape of ``pg_statistic`` for this library.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .core.bucket import Bucket
from .estimators import BucketEstimator
from .geometry import Rect

PathLike = Union[str, Path]

#: struct layout of one bucket: x1 y1 x2 y2 density count avg_w avg_h
_BUCKET_FORMAT = "<ffffffff"
_BUCKET_BYTES = struct.calcsize(_BUCKET_FORMAT)
_MAGIC = b"RSH1"  # Repro Spatial Histogram, version 1


def pack_buckets(buckets: List[Bucket]) -> bytes:
    """Serialise buckets to the paper's 8-words-per-bucket layout.

    Counts are stored as float32 like every other word (the paper's
    accounting treats all eight the same); counts up to 2^24 round-trip
    exactly.
    """
    parts = [_MAGIC, struct.pack("<I", len(buckets))]
    for b in buckets:
        parts.append(
            struct.pack(
                _BUCKET_FORMAT,
                b.bbox.x1, b.bbox.y1, b.bbox.x2, b.bbox.y2,
                b.avg_density, float(b.count), b.avg_width, b.avg_height,
            )
        )
    return b"".join(parts)


def unpack_buckets(blob: bytes) -> List[Bucket]:
    """Inverse of :func:`pack_buckets`."""
    if len(blob) < len(_MAGIC) + 4:
        raise ValueError("truncated summary blob")
    if blob[: len(_MAGIC)] != _MAGIC:
        raise ValueError(
            f"bad magic {blob[:len(_MAGIC)]!r}; not a packed summary"
        )
    (count,) = struct.unpack_from("<I", blob, len(_MAGIC))
    expected = len(_MAGIC) + 4 + count * _BUCKET_BYTES
    if len(blob) != expected:
        raise ValueError(
            f"summary blob has {len(blob)} bytes; expected {expected}"
        )
    buckets = []
    offset = len(_MAGIC) + 4
    for _ in range(count):
        x1, y1, x2, y2, density, n, avg_w, avg_h = struct.unpack_from(
            _BUCKET_FORMAT, blob, offset
        )
        offset += _BUCKET_BYTES
        buckets.append(
            Bucket(
                Rect(x1, y1, x2, y2),
                int(round(n)),
                avg_width=avg_w,
                avg_height=avg_h,
                avg_density=density,
            )
        )
    return buckets


def buckets_to_json(buckets: List[Bucket]) -> str:
    """Human-readable JSON export of a bucket summary."""
    return json.dumps(
        [
            {
                "bbox": list(b.bbox.as_tuple()),
                "count": b.count,
                "avg_width": b.avg_width,
                "avg_height": b.avg_height,
                "avg_density": b.avg_density,
            }
            for b in buckets
        ],
        indent=2,
    )


def buckets_from_json(text: str) -> List[Bucket]:
    """Inverse of :func:`buckets_to_json`."""
    records = json.loads(text)
    if not isinstance(records, list):
        raise ValueError("expected a JSON array of bucket records")
    buckets = []
    for i, record in enumerate(records):
        try:
            bbox = record["bbox"]
            buckets.append(
                Bucket(
                    Rect(*[float(v) for v in bbox]),
                    int(record["count"]),
                    avg_width=float(record.get("avg_width", 0.0)),
                    avg_height=float(record.get("avg_height", 0.0)),
                    avg_density=float(record.get("avg_density", 0.0)),
                )
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"bad bucket record at index {i}") from exc
    return buckets


class StatisticsCatalog:
    """A directory of named summaries, one ``.rsh`` file per attribute.

    >>> catalog = StatisticsCatalog(tmp_path)
    >>> catalog.store("roads.geom", estimator)
    >>> est = catalog.load("roads.geom")
    """

    SUFFIX = ".rsh"

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        if not name or "/" in name or "\\" in name:
            raise ValueError(f"invalid summary name {name!r}")
        return self.directory / f"{name}{self.SUFFIX}"

    def store(self, name: str, estimator: BucketEstimator) -> int:
        """Persist a bucket estimator; returns the bytes written."""
        blob = pack_buckets(estimator.buckets)
        self._path(name).write_bytes(blob)
        return len(blob)

    def load(self, name: str) -> BucketEstimator:
        """Reload a summary as a ready-to-use estimator."""
        path = self._path(name)
        if not path.exists():
            raise KeyError(f"no summary named {name!r} in {self.directory}")
        return BucketEstimator(unpack_buckets(path.read_bytes()),
                               name=name)

    def names(self) -> List[str]:
        """Sorted names of all stored summaries."""
        return sorted(
            p.stem for p in self.directory.glob(f"*{self.SUFFIX}")
        )

    def sizes_bytes(self) -> Dict[str, int]:
        """On-disk footprint per summary — the catalog budget view."""
        return {
            p.stem: p.stat().st_size
            for p in self.directory.glob(f"*{self.SUFFIX}")
        }

    def drop(self, name: str) -> None:
        """Delete a stored summary."""
        path = self._path(name)
        if not path.exists():
            raise KeyError(f"no summary named {name!r}")
        path.unlink()


def quantization_error(buckets: List[Bucket]) -> float:
    """Worst relative float32 rounding error across all stored words.

    The 8×float32 layout rounds values; callers that need a guarantee
    can check the summary's quantisation loss before storing it.
    """
    worst = 0.0
    for b in buckets:
        for value in (*b.bbox.as_tuple(), b.avg_density, float(b.count),
                      b.avg_width, b.avg_height):
            if value == 0.0:
                continue
            rounded = float(np.float32(value))
            worst = max(worst, abs(rounded - value) / abs(value))
    return worst

"""ASCII visualisation of datasets and partitionings.

The paper's Figures 1–7 are pictures of datasets, density surfaces, and
bucket layouts.  In a terminal-only reproduction we render the same
artifacts as character grids: density heat-maps (Figures 1 and 5) and
bucket-boundary overlays (Figures 2, 3, 4, and 7).  The y axis points up,
matching the figures.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .core.bucket import Bucket
from .geometry import Rect, RectSet
from .grid import DensityGrid

#: Density ramp from empty to densest.
DENSITY_RAMP = " .:-=+*#%@"


def render_density(
    grid: DensityGrid, *, ramp: str = DENSITY_RAMP
) -> str:
    """Heat-map of a density grid (dataset overview, Figures 1/5).

    Cell density is mapped linearly onto ``ramp``; rows are printed top
    (max y) to bottom.
    """
    if not ramp:
        raise ValueError("ramp must contain at least one character")
    d = grid.densities
    top = d.max()
    if top <= 0:
        normalised = np.zeros_like(d)
    else:
        normalised = d / top
    indices = np.minimum(
        (normalised * len(ramp)).astype(np.int64), len(ramp) - 1
    )
    lines = []
    for iy in range(grid.ny - 1, -1, -1):
        lines.append("".join(ramp[indices[ix, iy]]
                             for ix in range(grid.nx)))
    return "\n".join(lines)


def render_dataset(
    rects: RectSet, *, width: int = 70, height: int = 32
) -> str:
    """Heat-map of a dataset at terminal resolution (Figure 1)."""
    grid = DensityGrid.from_rects(rects, width, height)
    return render_density(grid)


def render_partition(
    buckets: Sequence[Bucket],
    bounds: Optional[Rect] = None,
    *,
    width: int = 70,
    height: int = 32,
) -> str:
    """Bucket-boundary overlay (Figures 2/3/4/7).

    Draws the border of every bucket box onto a character canvas:
    corners ``+``, horizontal edges ``-``, vertical edges ``|``.  Where
    boxes abut, their borders merge — the layout of the partitioning is
    what the paper's figures convey.
    """
    if not buckets:
        raise ValueError("no buckets to render")
    if bounds is None:
        x1 = min(b.bbox.x1 for b in buckets)
        y1 = min(b.bbox.y1 for b in buckets)
        x2 = max(b.bbox.x2 for b in buckets)
        y2 = max(b.bbox.y2 for b in buckets)
        bounds = Rect(x1, y1, x2, y2)
    if bounds.area <= 0:
        raise ValueError("degenerate bounds")

    canvas = np.full((height, width), " ", dtype="<U1")

    def col(x: float) -> int:
        t = (x - bounds.x1) / bounds.width
        return int(np.clip(round(t * (width - 1)), 0, width - 1))

    def row(y: float) -> int:
        t = (y - bounds.y1) / bounds.height
        return int(np.clip(round((1.0 - t) * (height - 1)), 0,
                           height - 1))

    for bucket in buckets:
        box = bucket.bbox
        c1, c2 = col(box.x1), col(box.x2)
        r_top, r_bot = row(box.y2), row(box.y1)
        for c in range(c1, c2 + 1):
            for r in (r_top, r_bot):
                if canvas[r, c] == " ":
                    canvas[r, c] = "-"
        for r in range(r_top, r_bot + 1):
            for c in (c1, c2):
                if canvas[r, c] in (" ", "-"):
                    canvas[r, c] = "|" if canvas[r, c] == " " else "+"
        for r in (r_top, r_bot):
            for c in (c1, c2):
                canvas[r, c] = "+"
    return "\n".join("".join(line) for line in canvas)

"""Crash-safe, checksummed artifact persistence.

Every durable artifact the library writes — histogram bucket files,
dataset snapshots, experiment checkpoints, bench documents — goes
through two guarantees here:

* **atomic replace**: content is written to a temporary file in the
  destination directory, flushed and ``fsync``\\ ed, then ``os.replace``\\ d
  over the destination.  A crash (even SIGKILL) mid-write leaves either
  the old file or the new file, never a torn one; at worst a stray
  ``*.tmp.*`` file remains, which readers ignore.
* **checksum envelope**: JSON artifacts are wrapped in an envelope
  carrying a magic string, a ``kind`` tag, and the SHA-256 of the
  canonical payload encoding.  :func:`read_artifact` refuses to return
  data that fails any of those checks, raising
  :class:`~repro.errors.ArtifactCorruptError` — a poisoned summary is
  detected at the storage boundary, where the fallback chain can turn
  it into degraded accuracy instead of a crash.

All reads and writes announce the ``storage.read`` / ``storage.write``
fault-injection sites, so chaos runs exercise exactly these paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, List, Optional, Union

from ..core.bucket import Bucket
from ..errors import ArtifactCorruptError, ArtifactMissingError
from ..geometry import Rect, RectSet
from ..obs import OBS
from ..resilience.faults import fire

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "atomic_write_bytes",
    "atomic_write_text",
    "write_artifact",
    "read_artifact",
    "save_buckets",
    "load_buckets",
    "save_rectset",
    "load_rectset",
]

PathLike = Union[str, Path]

ARTIFACT_MAGIC = "repro-artifact"
ARTIFACT_VERSION = 1


def _canonical(payload: Any) -> str:
    """Canonical JSON encoding (the checksummed byte stream)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace)."""
    target = Path(path)
    fire("storage.write")
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".tmp.", dir=target.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        # Leave no half-written destination; the stray tmp file (if
        # the replace itself failed) is ignored by all readers.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    OBS.add("storage.atomic_writes")


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomic UTF-8 text write (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode("utf-8"))


# ----------------------------------------------------------------------
# checksummed envelopes
# ----------------------------------------------------------------------
def write_artifact(
    path: PathLike, payload: Any, *, kind: str
) -> None:
    """Atomically write ``payload`` in a checksummed envelope.

    ``payload`` must be JSON-serialisable with finite numbers only
    (NaN/inf would not round-trip through strict JSON).
    """
    body = _canonical(payload)
    envelope = {
        "magic": ARTIFACT_MAGIC,
        "version": ARTIFACT_VERSION,
        "kind": kind,
        "sha256": _sha256(body),
        "payload": payload,
    }
    atomic_write_text(
        path, json.dumps(envelope, sort_keys=True, indent=1) + "\n"
    )


def read_artifact(
    path: PathLike, *, kind: Optional[str] = None
) -> Any:
    """Read and verify an envelope written by :func:`write_artifact`.

    Raises
    ------
    ArtifactMissingError
        ``path`` does not exist.
    ArtifactCorruptError
        Unparseable JSON, wrong magic/version, ``kind`` mismatch, or
        checksum failure.
    """
    fire("storage.read")
    target = Path(path)
    try:
        raw = target.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise ArtifactMissingError(
            f"artifact not found: {target}",
            hint="check the path, or regenerate the artifact",
        ) from None
    except OSError as exc:
        raise ArtifactCorruptError(
            f"artifact unreadable: {target} ({exc})",
            hint="check filesystem permissions and integrity",
        ) from exc

    def corrupt(reason: str) -> ArtifactCorruptError:
        OBS.add("storage.corrupt_artifacts")
        return ArtifactCorruptError(
            f"corrupt artifact {target}: {reason}",
            hint="delete and regenerate the file; the checksummed "
                 "reader never returns partial data",
        )

    try:
        envelope = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise corrupt(f"invalid JSON ({exc.msg})") from exc
    if not isinstance(envelope, dict) \
            or envelope.get("magic") != ARTIFACT_MAGIC:
        raise corrupt("missing repro-artifact envelope")
    if envelope.get("version") != ARTIFACT_VERSION:
        raise corrupt(
            f"unsupported envelope version {envelope.get('version')!r}"
        )
    if kind is not None and envelope.get("kind") != kind:
        raise corrupt(
            f"kind mismatch: expected {kind!r}, "
            f"found {envelope.get('kind')!r}"
        )
    if "payload" not in envelope or "sha256" not in envelope:
        raise corrupt("envelope missing payload or checksum")
    payload = envelope["payload"]
    if _sha256(_canonical(payload)) != envelope["sha256"]:
        raise corrupt("checksum mismatch")
    OBS.add("storage.artifact_reads")
    return payload


# ----------------------------------------------------------------------
# histogram (bucket list) artifacts
# ----------------------------------------------------------------------
_BUCKETS_KIND = "buckets"


def save_buckets(path: PathLike, buckets: List[Bucket]) -> None:
    """Persist a bucket histogram as a checksummed artifact."""
    payload = {
        "buckets": [
            [
                b.bbox.x1, b.bbox.y1, b.bbox.x2, b.bbox.y2,
                int(b.count), b.avg_width, b.avg_height, b.avg_density,
            ]
            for b in buckets
        ],
    }
    write_artifact(path, payload, kind=_BUCKETS_KIND)


def load_buckets(path: PathLike) -> List[Bucket]:
    """Load a histogram saved by :func:`save_buckets` (verified)."""
    payload = read_artifact(path, kind=_BUCKETS_KIND)
    try:
        rows = payload["buckets"]
        return [
            Bucket(
                Rect(float(r[0]), float(r[1]), float(r[2]),
                     float(r[3])),
                int(r[4]),
                avg_width=float(r[5]),
                avg_height=float(r[6]),
                avg_density=float(r[7]),
            )
            for r in rows
        ]
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"corrupt bucket artifact {path}: {exc}",
            hint="delete and regenerate the histogram file",
        ) from exc


# ----------------------------------------------------------------------
# dataset snapshots
# ----------------------------------------------------------------------
_RECTSET_KIND = "rectset"


def save_rectset(path: PathLike, rects: RectSet) -> None:
    """Persist a :class:`RectSet` as a checksummed artifact."""
    write_artifact(
        path, {"coords": rects.coords.tolist()}, kind=_RECTSET_KIND
    )


def load_rectset(path: PathLike) -> RectSet:
    """Load a snapshot saved by :func:`save_rectset` (verified)."""
    payload = read_artifact(path, kind=_RECTSET_KIND)
    try:
        coords = payload["coords"]
        if not coords:
            return RectSet.empty()
        return RectSet(coords, copy=False, validate=True)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"corrupt rectset artifact {path}: {exc}",
            hint="delete and regenerate the dataset snapshot",
        ) from exc

"""Paged storage with I/O accounting and external-memory builders —
the substrate that turns Section 3.5's disk-access arguments into
measurable numbers."""

from .buffer import BufferPool
from .checkpoint import CheckpointStore, config_fingerprint
from .external import (
    external_density_grid,
    external_mbr,
    external_min_skew,
    external_reservoir_sample,
    multipass_equi_area,
)
from .pagefile import DEFAULT_PAGE_CAPACITY, PageFile
from .persist import (
    atomic_write_bytes,
    atomic_write_text,
    load_buckets,
    load_rectset,
    read_artifact,
    save_buckets,
    save_rectset,
    write_artifact,
)

__all__ = [
    "PageFile",
    "DEFAULT_PAGE_CAPACITY",
    "BufferPool",
    "external_mbr",
    "external_density_grid",
    "external_min_skew",
    "external_reservoir_sample",
    "multipass_equi_area",
    "atomic_write_bytes",
    "atomic_write_text",
    "write_artifact",
    "read_artifact",
    "save_buckets",
    "load_buckets",
    "save_rectset",
    "load_rectset",
    "CheckpointStore",
    "config_fingerprint",
]

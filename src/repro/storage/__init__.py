"""Paged storage with I/O accounting and external-memory builders —
the substrate that turns Section 3.5's disk-access arguments into
measurable numbers."""

from .buffer import BufferPool
from .external import (
    external_density_grid,
    external_mbr,
    external_min_skew,
    external_reservoir_sample,
    multipass_equi_area,
)
from .pagefile import DEFAULT_PAGE_CAPACITY, PageFile

__all__ = [
    "PageFile",
    "DEFAULT_PAGE_CAPACITY",
    "BufferPool",
    "external_mbr",
    "external_density_grid",
    "external_min_skew",
    "external_reservoir_sample",
    "multipass_equi_area",
]

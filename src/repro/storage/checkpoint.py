"""Checkpoint/resume for long experiment runs.

A :class:`CheckpointStore` is a directory of checksummed per-cell
artifacts plus a ``meta`` record pinning the run's configuration
fingerprint.  An experiment writes each completed cell (one dataset ×
technique evaluation, one sweep point, ...) with an atomic replace; a
run killed at any instant — including SIGKILL mid-write — restarts by
loading every intact cell and recomputing only the missing ones, which
makes resumed runs **bit-identical** to uninterrupted ones for
deterministic workloads.

Safety properties:

* a cell that fails its checksum (torn by a crash predating atomic
  writes, or corrupted on disk) is treated as *missing* and recomputed,
  never half-loaded;
* resuming under a different configuration fingerprint raises
  :class:`~repro.errors.CheckpointError` instead of silently mixing
  results from two experiments.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import (
    ArtifactCorruptError,
    ArtifactMissingError,
    CheckpointError,
)
from ..obs import OBS
from .persist import read_artifact, write_artifact

__all__ = ["CheckpointStore", "config_fingerprint"]

PathLike = Union[str, Path]

_META_KIND = "checkpoint-meta"
_CELL_KIND = "checkpoint-cell"
_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def config_fingerprint(config: Any) -> str:
    """Stable fingerprint of a JSON-serialisable configuration."""
    body = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """A directory of resumable, checksummed experiment cells.

    Parameters
    ----------
    directory:
        Where cells live; created if absent.
    fingerprint:
        The owning run's configuration fingerprint (see
        :func:`config_fingerprint`).  A store created under one
        fingerprint refuses to resume under another.
    """

    def __init__(self, directory: PathLike, fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_meta()

    # ------------------------------------------------------------------
    def _meta_path(self) -> Path:
        return self.directory / "meta.json"

    def _check_meta(self) -> None:
        try:
            meta = read_artifact(self._meta_path(), kind=_META_KIND)
        except ArtifactMissingError:
            write_artifact(
                self._meta_path(),
                {"fingerprint": self.fingerprint},
                kind=_META_KIND,
            )
            return
        except ArtifactCorruptError:
            # A torn meta write cannot vouch for any cell: start over.
            OBS.add("storage.checkpoint_meta_corrupt")
            self.clear()
            write_artifact(
                self._meta_path(),
                {"fingerprint": self.fingerprint},
                kind=_META_KIND,
            )
            return
        found = meta.get("fingerprint")
        if found != self.fingerprint:
            raise CheckpointError(
                f"checkpoint directory {self.directory} belongs to a "
                f"different run configuration "
                f"(found {found!r}, expected {self.fingerprint!r})",
                hint="point --checkpoint-dir at a fresh directory or "
                     "delete the stale one",
            )

    def _cell_path(self, key: str) -> Path:
        safe = _UNSAFE.sub("_", key)
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
        return self.directory / f"cell-{safe}-{digest}.json"

    # ------------------------------------------------------------------
    def save(self, key: str, cell: Any) -> None:
        """Atomically persist one completed cell under ``key``."""
        write_artifact(
            self._cell_path(key),
            {"key": key, "cell": cell},
            kind=_CELL_KIND,
        )
        OBS.add("storage.checkpoint_saves")

    def load(self, key: str) -> Optional[Any]:
        """The stored cell for ``key``, or ``None`` when absent.

        A corrupt cell (torn/poisoned file) counts as absent — the
        caller recomputes it — and is counted on
        ``storage.checkpoint_corrupt``.
        """
        try:
            payload = read_artifact(self._cell_path(key),
                                    kind=_CELL_KIND)
        except ArtifactMissingError:
            return None
        except ArtifactCorruptError:
            OBS.add("storage.checkpoint_corrupt")
            return None
        if payload.get("key") != key:
            OBS.add("storage.checkpoint_corrupt")
            return None
        OBS.add("storage.checkpoint_hits")
        return payload.get("cell")

    def keys(self) -> List[str]:
        """Keys of every intact stored cell."""
        found: List[str] = []
        for path in sorted(self.directory.glob("cell-*.json")):
            try:
                payload = read_artifact(path, kind=_CELL_KIND)
            except (ArtifactMissingError, ArtifactCorruptError):
                continue
            key = payload.get("key")
            if isinstance(key, str):
                found.append(key)
        return found

    def clear(self) -> None:
        """Delete every cell (and stray tmp files); keeps the dir."""
        for path in self.directory.iterdir():
            if path.is_file():
                path.unlink()

    def stats(self) -> Dict[str, int]:
        return {"cells": len(self.keys())}

    def __repr__(self) -> str:
        return (
            f"CheckpointStore({str(self.directory)!r}, "
            f"fingerprint={self.fingerprint!r})"
        )

"""An LRU buffer pool over a :class:`~repro.storage.pagefile.PageFile`.

Construction algorithms whose access pattern has locality (the R-tree's
repeated root-to-leaf descents, for example) touch far fewer *distinct*
pages than raw accesses; the buffer pool separates logical accesses from
actual page fetches, exactly as a database buffer manager would.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .pagefile import PageFile


class BufferPool:
    """Least-recently-used page cache with hit/miss accounting."""

    def __init__(self, pagefile: PageFile, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least 1")
        self.pagefile = pagefile
        self.capacity = capacity
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def read_page(self, index: int) -> np.ndarray:
        """Fetch a page through the cache."""
        cached = self._cache.get(index)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(index)
            return cached
        self.misses += 1
        page = self.pagefile.read_page(index)
        self._cache[index] = page
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return page

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, hits={self.hits}, "
            f"misses={self.misses})"
        )

"""External-memory construction algorithms over paged storage.

These are the I/O-conscious counterparts of the in-memory builders, and
they make Section 3.5's cost claims measurable:

* :func:`external_density_grid` — Min-Skew's input, built in **one
  sequential sweep** (the paper: "the spatial densities can be obtained
  easily in a single sweep of the input data");
* :func:`external_min_skew` — the full Min-Skew construction: one
  density sweep per refinement stage plus one assignment sweep, with
  only O(regions + buckets) memory;
* :func:`external_reservoir_sample` — the Sample technique's one-pass
  draw;
* :func:`multipass_equi_area` — the equi-partitionings "can be modified
  to use less memory, but they still make several passes over the input
  data": this variant keeps only the bucket regions in memory and pays
  one full sweep per split;
* the R-tree's cost is measured directly on the instrumented
  :class:`~repro.rtree.RStarTree` node counters.

Every function leaves its cost in the page file's ``reads`` counter.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.bucket import Bucket
from ..core.minskew import MinSkewPartitioner, _Block
from ..geometry import Rect, RectSet
from ..grid import BlockStats, DensityGrid, square_grid_shape
from .pagefile import PageFile


def external_mbr(pagefile: PageFile) -> Rect:
    """Dataset MBR in one sweep (systems usually keep this in metadata)."""
    x1 = y1 = np.inf
    x2 = y2 = -np.inf
    for page in pagefile.scan():
        x1 = min(x1, page[:, 0].min())
        y1 = min(y1, page[:, 1].min())
        x2 = max(x2, page[:, 2].max())
        y2 = max(y2, page[:, 3].max())
    if not np.isfinite(x1):
        raise ValueError("cannot compute the MBR of an empty page file")
    return Rect(float(x1), float(y1), float(x2), float(y2))


def external_density_grid(
    pagefile: PageFile, nx: int, ny: int, bounds: Rect
) -> DensityGrid:
    """Density grid in a single sequential sweep.

    Memory: the (nx+1)×(ny+1) difference array only — independent of
    the data size, which is Min-Skew's headline construction property.
    """
    if nx <= 0 or ny <= 0:
        raise ValueError("grid resolution must be positive")
    cell_w = bounds.width / nx
    cell_h = bounds.height / ny
    diff = np.zeros((nx + 1, ny + 1), dtype=np.float64)
    for page in pagefile.scan():
        ix0 = np.clip(((page[:, 0] - bounds.x1) // cell_w)
                      .astype(np.int64), 0, nx - 1)
        ix1 = np.clip(((page[:, 2] - bounds.x1) // cell_w)
                      .astype(np.int64), 0, nx - 1)
        iy0 = np.clip(((page[:, 1] - bounds.y1) // cell_h)
                      .astype(np.int64), 0, ny - 1)
        iy1 = np.clip(((page[:, 3] - bounds.y1) // cell_h)
                      .astype(np.int64), 0, ny - 1)
        np.add.at(diff, (ix0, iy0), 1.0)
        np.add.at(diff, (ix1 + 1, iy0), -1.0)
        np.add.at(diff, (ix0, iy1 + 1), -1.0)
        np.add.at(diff, (ix1 + 1, iy1 + 1), 1.0)
    densities = diff.cumsum(axis=0).cumsum(axis=1)[:nx, :ny]
    return DensityGrid(densities, bounds)


def external_reservoir_sample(
    pagefile: PageFile, k: int, rng: np.random.Generator
) -> RectSet:
    """One-pass reservoir sample of ``k`` rectangles."""
    if k < 1:
        raise ValueError("sample size must be at least 1")
    reservoir: List[np.ndarray] = []
    seen = 0
    for page in pagefile.scan():
        for row in page:
            if seen < k:
                reservoir.append(row.copy())
            else:
                j = int(rng.integers(0, seen + 1))
                if j < k:
                    reservoir[j] = row.copy()
            seen += 1
    if not reservoir:
        return RectSet.empty()
    return RectSet(np.vstack(reservoir), copy=False, validate=False)


def external_min_skew(
    pagefile: PageFile,
    n_buckets: int,
    *,
    n_regions: int = 10_000,
    refinements: int = 0,
    split_policy: str = "marginal",
    bounds: Optional[Rect] = None,
) -> Tuple[List[Bucket], DensityGrid]:
    """Min-Skew over paged data: O(regions) memory, few sweeps.

    Sweeps: one per refinement stage for the density grid (the grid is
    *recomputed* at each resolution, matching Section 5.6), plus one
    final sweep assigning rectangles to buckets.  Returns the buckets
    and the final grid.
    """
    partitioner = MinSkewPartitioner(
        n_buckets,
        n_regions=n_regions,
        refinements=refinements,
        split_policy=split_policy,
    )
    if bounds is None:
        bounds = external_mbr(pagefile)
    if bounds.area <= 0:
        data = pagefile.to_rectset()
        return [Bucket.from_members(bounds, data)], DensityGrid(
            np.array([[float(len(data))]]),
            Rect(bounds.x1, bounds.y1, bounds.x1 + 1, bounds.y1 + 1),
        )

    nx, ny = square_grid_shape(n_regions, bounds)
    factor = 2 ** refinements
    nx_stage = max(1, nx // factor)
    ny_stage = max(1, ny // factor)

    n_stages = refinements + 1
    quota = max(1, n_buckets // n_stages)
    blocks = None
    grid = None
    for stage in range(n_stages):
        grid = external_density_grid(pagefile, nx_stage, ny_stage,
                                     bounds)
        if blocks is None:
            blocks = [_Block(0, grid.nx - 1, 0, grid.ny - 1)]
        else:
            blocks = [b.scaled(2) for b in blocks]
        target = n_buckets if stage == n_stages - 1 \
            else min(n_buckets, quota * (stage + 1))
        stats = BlockStats(grid.densities)
        partitioner._greedy_split(grid, stats, blocks, target, [])
        nx_stage *= 2
        ny_stage *= 2

    assert blocks is not None and grid is not None

    # final sweep: assign rectangles by center, accumulate statistics
    label = np.full((grid.nx, grid.ny), -1, dtype=np.int64)
    for i, b in enumerate(blocks):
        label[b.ix0:b.ix1 + 1, b.iy0:b.iy1 + 1] = i
    n_blocks = len(blocks)
    counts = np.zeros(n_blocks, dtype=np.int64)
    sum_w = np.zeros(n_blocks)
    sum_h = np.zeros(n_blocks)
    for page in pagefile.scan():
        cx = (page[:, 0] + page[:, 2]) / 2.0
        cy = (page[:, 1] + page[:, 3]) / 2.0
        ix = np.clip(((cx - bounds.x1) // grid.cell_width)
                     .astype(np.int64), 0, grid.nx - 1)
        iy = np.clip(((cy - bounds.y1) // grid.cell_height)
                     .astype(np.int64), 0, grid.ny - 1)
        assignment = label[ix, iy]
        counts += np.bincount(assignment, minlength=n_blocks)
        sum_w += np.bincount(assignment, weights=page[:, 2] - page[:, 0],
                             minlength=n_blocks)
        sum_h += np.bincount(assignment, weights=page[:, 3] - page[:, 1],
                             minlength=n_blocks)

    stats = BlockStats(grid.densities)
    buckets: List[Bucket] = []
    for i, b in enumerate(blocks):
        box = grid.block_rect(b.ix0, b.ix1, b.iy0, b.iy1)
        c = int(counts[i])
        mean_density = stats.block_mean(b.ix0, b.ix1, b.iy0, b.iy1)
        if c == 0:
            buckets.append(Bucket(box, 0, avg_density=mean_density))
        else:
            buckets.append(
                Bucket(box, c, avg_width=float(sum_w[i] / c),
                       avg_height=float(sum_h[i] / c),
                       avg_density=mean_density)
            )
    return buckets, grid


def multipass_equi_area(
    pagefile: PageFile,
    n_buckets: int,
    *,
    bounds: Optional[Rect] = None,
) -> List[Bucket]:
    """Equi-Area with only the bucket regions in memory.

    Buckets are represented by disjoint *regions*; each split costs one
    full sweep: the sweep classifies every rectangle into its region,
    recomputes the two children's member MBRs and the splitting
    region's midpoint partition.  Final statistics cost one more sweep.
    Total: β sweeps — the "several passes" of Section 3.5.
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be at least 1")
    if bounds is None:
        bounds = external_mbr(pagefile)

    # regions: disjoint axis-aligned cover; mbrs: member MBR per region
    regions: List[Rect] = [bounds]
    mbrs: List[Optional[Rect]] = [bounds]

    def sweep_region_stats(target_idx: int, axis: int, mid: float):
        """One sweep: child member-MBRs and counts for a region split."""
        low = [np.inf, np.inf, -np.inf, -np.inf, 0]
        high = [np.inf, np.inf, -np.inf, -np.inf, 0]
        for page in pagefile.scan():
            cx = (page[:, 0] + page[:, 2]) / 2.0
            cy = (page[:, 1] + page[:, 3]) / 2.0
            region = regions[target_idx]
            inside = (
                (cx >= region.x1) & (cx <= region.x2)
                & (cy >= region.y1) & (cy <= region.y2)
            )
            # exclude rects owned by an earlier (more specific) region:
            # regions are disjoint so containment is unambiguous
            if not inside.any():
                continue
            centers = cx if axis == 0 else cy
            left_mask = inside & (centers < mid)
            right_mask = inside & ~(centers < mid)
            for mask, acc in ((left_mask, low), (right_mask, high)):
                if mask.any():
                    sub = page[mask]
                    acc[0] = min(acc[0], sub[:, 0].min())
                    acc[1] = min(acc[1], sub[:, 1].min())
                    acc[2] = max(acc[2], sub[:, 2].max())
                    acc[3] = max(acc[3], sub[:, 3].max())
                    acc[4] += int(mask.sum())
        return low, high

    while len(regions) < n_buckets:
        # pick the region with the longest member-MBR side
        candidates = [
            (max(m.width, m.height), i)
            for i, m in enumerate(mbrs) if m is not None
        ]
        if not candidates:
            break
        _, idx = max(candidates)
        member = mbrs[idx]
        assert member is not None
        axis = 0 if member.width >= member.height else 1
        mid = member.center[0] if axis == 0 else member.center[1]
        low, high = sweep_region_stats(idx, axis, mid)
        if low[4] == 0 or high[4] == 0:
            mbrs[idx] = None  # unsplittable under midpoint rule
            continue
        region = regions[idx]
        if axis == 0:
            left_region = Rect(region.x1, region.y1, mid, region.y2)
            right_region = Rect(mid, region.y1, region.x2, region.y2)
        else:
            left_region = Rect(region.x1, region.y1, region.x2, mid)
            right_region = Rect(region.x1, mid, region.x2, region.y2)
        regions[idx] = left_region
        regions.append(right_region)
        mbrs[idx] = Rect(low[0], low[1], low[2], low[3])
        mbrs.append(Rect(high[0], high[1], high[2], high[3]))

    # final statistics sweep
    n = len(regions)
    counts = np.zeros(n, dtype=np.int64)
    sum_w = np.zeros(n)
    sum_h = np.zeros(n)
    for page in pagefile.scan():
        cx = (page[:, 0] + page[:, 2]) / 2.0
        cy = (page[:, 1] + page[:, 3]) / 2.0
        assigned = np.full(page.shape[0], -1, dtype=np.int64)
        for i, region in enumerate(regions):
            todo = assigned == -1
            if not todo.any():
                break
            inside = (
                (cx >= region.x1) & (cx <= region.x2)
                & (cy >= region.y1) & (cy <= region.y2)
            )
            assigned[todo & inside] = i
        valid = assigned >= 0
        counts += np.bincount(assigned[valid], minlength=n)
        sum_w += np.bincount(assigned[valid],
                             weights=(page[:, 2] - page[:, 0])[valid],
                             minlength=n)
        sum_h += np.bincount(assigned[valid],
                             weights=(page[:, 3] - page[:, 1])[valid],
                             minlength=n)

    buckets = []
    for i in range(n):
        box = mbrs[i] if mbrs[i] is not None else regions[i]
        c = int(counts[i])
        if c == 0:
            buckets.append(Bucket(regions[i], 0))
        else:
            buckets.append(
                Bucket(box, c, avg_width=float(sum_w[i] / c),
                       avg_height=float(sum_h[i] / c))
            )
    return buckets

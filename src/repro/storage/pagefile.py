"""Paged storage of rectangle tables, with I/O accounting.

Section 3.5 of the paper argues about construction costs in terms of
disk accesses: the equi-partitionings "make several passes over the
input data", a naive R-tree build costs O(N log_B N) I/Os versus
O(N/B log_B N) bulk-loaded, and Min-Skew's density grid "can be obtained
easily in a single sweep of the input data".  To *measure* those claims
rather than assert them, this subsystem stores a rectangle table as
fixed-capacity pages and counts every page read and write.

A page holds ``capacity`` rectangle records (the analogue of a disk
block of B tuples).  :class:`PageFile` is the primitive; the buffer pool
and the external algorithms live in sibling modules.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from ..geometry import RectSet

#: Default records per page: 4 float64 coordinates = 32 bytes per rect,
#: so 128 records ≈ a 4 KiB page.
DEFAULT_PAGE_CAPACITY = 128


class PageFile:
    """An immutable rectangle table split into fixed-size pages.

    Every :meth:`read_page` increments the read counter; algorithms
    built on top report their cost as ``pagefile.reads`` after a run.
    """

    def __init__(self, pages: List[np.ndarray], capacity: int) -> None:
        self._pages = pages
        self.capacity = capacity
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_rectset(
        cls, rects: RectSet, capacity: int = DEFAULT_PAGE_CAPACITY
    ) -> "PageFile":
        """Pack a :class:`RectSet` into pages of ``capacity`` records."""
        if capacity < 1:
            raise ValueError("page capacity must be at least 1")
        coords = rects.coords
        pages = [
            coords[start:start + capacity].copy()
            for start in range(0, len(rects), capacity)
        ]
        pf = cls(pages, capacity)
        pf.writes = len(pages)  # the initial materialisation
        return pf

    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        return len(self._pages)

    @property
    def n_records(self) -> int:
        return sum(p.shape[0] for p in self._pages)

    def read_page(self, index: int) -> np.ndarray:
        """Fetch one page (counted); returns an (m, 4) coords block."""
        if not 0 <= index < self.n_pages:
            raise IndexError(
                f"page {index} out of range [0, {self.n_pages})"
            )
        self.reads += 1
        return self._pages[index]

    def scan(self) -> Iterator[np.ndarray]:
        """Full sequential sweep: yields every page once (counted)."""
        for i in range(self.n_pages):
            yield self.read_page(i)

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0

    def to_rectset(self) -> RectSet:
        """Materialise the whole table (counts a full sweep)."""
        blocks = list(self.scan())
        if not blocks:
            return RectSet.empty()
        return RectSet(np.vstack(blocks), copy=False, validate=False)

    def __repr__(self) -> str:
        return (
            f"PageFile(pages={self.n_pages}, records={self.n_records}, "
            f"capacity={self.capacity})"
        )

"""Exact range-count oracle via inclusion–exclusion over "miss" classes.

A data rectangle *misses* a query Q iff it lies entirely in one of four
open half-planes: left of Q (``x2 < qx1``), right (``x1 > qx2``), below
(``y2 < qy1``), or above (``y1 > qy2``).  Left/right are mutually
exclusive, as are below/above, and no three classes can co-occur, so

    |miss| = |L| + |R| + |B| + |T|
           - |L∩B| - |L∩T| - |R∩B| - |R∩T|

and ``|Q| = N - |miss|``.  The four 1-D terms are binary searches over
pre-sorted corner arrays; the four 2-D terms are offline dominance counts
(:func:`repro.counting.dominance.dominance_count`).  Total cost is
O((N + Q) log N) — this is the oracle the benchmark harness uses to get
exact ground truth for the paper's 10 000-query workloads without an
O(N·Q) scan.

Negating coordinates flips the strict inequality direction, which is how
all four dominance terms reuse the single "strictly below-left" counter:
``x1 > qx2``  ⇔  ``-x1 < -qx2``.
"""

from __future__ import annotations

import numpy as np

from ..geometry import RectSet
from .dominance import dominance_count


class ExactCountOracle:
    """Precomputes sorted corner arrays for repeated exact counting.

    Parameters
    ----------
    data:
        The input distribution T.  The oracle keeps only the corner
        arrays (four sorted copies), not the RectSet itself.
    """

    def __init__(self, data: RectSet) -> None:
        self._n = len(data)
        self._x1 = np.sort(data.x1)
        self._y1 = np.sort(data.y1)
        self._x2 = np.sort(data.x2)
        self._y2 = np.sort(data.y2)
        # unsorted copies for the dominance sweeps
        self._raw_x1 = data.x1.copy()
        self._raw_y1 = data.y1.copy()
        self._raw_x2 = data.x2.copy()
        self._raw_y2 = data.y2.copy()

    def __len__(self) -> int:
        return self._n

    def counts(self, queries: RectSet) -> np.ndarray:
        """Exact |Q| for every query rectangle (``int64`` array)."""
        q = len(queries)
        if q == 0:
            return np.zeros(0, dtype=np.int64)
        if self._n == 0:
            return np.zeros(q, dtype=np.int64)

        qx1 = queries.x1
        qy1 = queries.y1
        qx2 = queries.x2
        qy2 = queries.y2

        # 1-D miss classes (strict half-plane containment)
        left = np.searchsorted(self._x2, qx1, side="left")
        right = self._n - np.searchsorted(self._x1, qx2, side="right")
        below = np.searchsorted(self._y2, qy1, side="left")
        above = self._n - np.searchsorted(self._y1, qy2, side="right")

        # 2-D overlaps of miss classes, all expressed as strict
        # below-left dominance by negating the flipped axes
        lb = dominance_count(self._raw_x2, self._raw_y2, qx1, qy1)
        lt = dominance_count(self._raw_x2, -self._raw_y1, qx1, -qy2)
        rb = dominance_count(-self._raw_x1, self._raw_y2, -qx2, qy1)
        rt = dominance_count(-self._raw_x1, -self._raw_y1, -qx2, -qy2)

        misses = left + right + below + above - lb - lt - rb - rt
        counts = self._n - misses
        if (counts < 0).any() or (counts > self._n).any():
            raise AssertionError(
                "inclusion-exclusion produced an out-of-range count; "
                "this indicates corrupted input data"
            )
        return counts.astype(np.int64)

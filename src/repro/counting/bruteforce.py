"""Chunked vectorised brute-force intersection counting.

The always-correct baseline oracle: for each query rectangle, count input
rectangles with a non-empty (closed) intersection by direct comparison.
Queries are processed in blocks so peak memory stays at
``chunk × N`` booleans instead of ``Q × N``.

Used to validate the Fenwick-based oracle and the R*-tree counts, and as
the ground truth in small tests.
"""

from __future__ import annotations

import numpy as np

from ..geometry import RectSet


def brute_force_counts(
    data: RectSet,
    queries: RectSet,
    *,
    chunk_size: int = 256,
) -> np.ndarray:
    """Exact |Q| for every query rectangle.

    Parameters
    ----------
    data:
        The input distribution T.
    queries:
        Query rectangles (point queries are degenerate rectangles).
    chunk_size:
        Number of queries per vectorised block.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length ``len(queries)``.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")

    n_queries = len(queries)
    result = np.zeros(n_queries, dtype=np.int64)
    if n_queries == 0 or len(data) == 0:
        return result

    dx1 = data.x1[np.newaxis, :]
    dy1 = data.y1[np.newaxis, :]
    dx2 = data.x2[np.newaxis, :]
    dy2 = data.y2[np.newaxis, :]
    qc = queries.coords

    for start in range(0, n_queries, chunk_size):
        block = qc[start:start + chunk_size]
        qx1 = block[:, 0][:, np.newaxis]
        qy1 = block[:, 1][:, np.newaxis]
        qx2 = block[:, 2][:, np.newaxis]
        qy2 = block[:, 3][:, np.newaxis]
        hits = (
            (dx1 <= qx2)
            & (dx2 >= qx1)
            & (dy1 <= qy2)
            & (dy2 >= qy1)
        )
        result[start:start + block.shape[0]] = hits.sum(axis=1)
    return result

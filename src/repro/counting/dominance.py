"""Offline 2-D dominance counting.

``dominance_count(px, py, qx, qy)`` returns, for every query point
``(qx[j], qy[j])``, the number of data points with ``px < qx[j]`` **and**
``py < qy[j]`` (strict on both axes).  The algorithm is the classic
sweep: sort points and queries by x, insert point y-ranks into a Fenwick
tree as the sweep line passes them, and answer each query with a prefix
sum — O((N + Q) log N) total.

The exact range-count oracle (:mod:`repro.counting.oracle`) reduces
rectangle-intersection counting to four 1-D counts and four of these
dominance counts via inclusion–exclusion.
"""

from __future__ import annotations

import numpy as np

from .fenwick import FenwickTree


def dominance_count(
    px: np.ndarray,
    py: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
) -> np.ndarray:
    """Count strictly-dominated data points per query.

    Parameters
    ----------
    px, py:
        Data point coordinates, both of length N.
    qx, qy:
        Query point coordinates, both of length Q.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length Q; element j is
        ``#{i : px[i] < qx[j] and py[i] < qy[j]}``.
    """
    px = np.asarray(px, dtype=np.float64)
    py = np.asarray(py, dtype=np.float64)
    qx = np.asarray(qx, dtype=np.float64)
    qy = np.asarray(qy, dtype=np.float64)
    if px.shape != py.shape or px.ndim != 1:
        raise ValueError("px and py must be 1-D arrays of equal length")
    if qx.shape != qy.shape or qx.ndim != 1:
        raise ValueError("qx and qy must be 1-D arrays of equal length")

    n = px.shape[0]
    q = qx.shape[0]
    result = np.zeros(q, dtype=np.int64)
    if n == 0 or q == 0:
        return result

    # coordinate-compress point y values; rank(qy) = #distinct py < qy
    unique_py = np.unique(py)
    point_ranks = np.searchsorted(unique_py, py, side="left")
    query_ranks = np.searchsorted(unique_py, qy, side="left")

    point_order = np.argsort(px, kind="stable")
    query_order = np.argsort(qx, kind="stable")
    sorted_px = px[point_order]

    tree = FenwickTree(unique_py.shape[0])
    inserted = 0
    for j in query_order:
        threshold = qx[j]
        while inserted < n and sorted_px[inserted] < threshold:
            tree.add(int(point_ranks[point_order[inserted]]))
            inserted += 1
        result[j] = tree.prefix_sum(int(query_ranks[j]))
    return result

"""Fenwick tree (binary indexed tree) over integer counts.

Substrate for the offline dominance counter
(:mod:`repro.counting.dominance`), which turns exact ground-truth
computation for the paper's 10 000-query workloads from an O(N·Q) scan
into an O((N + Q) log N) sweep.
"""

from __future__ import annotations

import numpy as np


class FenwickTree:
    """Prefix-sum structure over ``size`` integer slots (0-indexed)."""

    __slots__ = ("_tree", "size")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` at position ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")
        i = index + 1
        tree = self._tree
        while i <= self.size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, count: int) -> int:
        """Sum of the first ``count`` positions, i.e. indices [0, count)."""
        if count <= 0:
            return 0
        i = min(count, self.size)
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over indices [lo, hi)."""
        return self.prefix_sum(hi) - self.prefix_sum(lo)

    def total(self) -> int:
        """Sum over all positions."""
        return self.prefix_sum(self.size)

"""Exact intersection-counting oracles: brute force, Fenwick-based
inclusion–exclusion, and the structures beneath them."""

from .bruteforce import brute_force_counts
from .dominance import dominance_count
from .fenwick import FenwickTree
from .oracle import ExactCountOracle

__all__ = [
    "FenwickTree",
    "brute_force_counts",
    "dominance_count",
    "ExactCountOracle",
]

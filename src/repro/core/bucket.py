"""Histogram buckets and the per-bucket uniformity-assumption formulas.

Every bucket-based technique in the paper (Equi-Area, Equi-Count, R-Tree,
Min-Skew) produces a set of buckets and answers queries by "applying the
uniformity assumption (and the corresponding formulae developed in
Section 3.1) individually to each bucket".

A bucket stores exactly the eight words of Section 5.4: the four
bounding-box coordinates, the average density, the rectangle count, and
the average width and height of the member rectangles.

The range formula (Section 3.1) extends each query side outward by the
average extent — "the left side of the query [is extended] by the average
width subject to the constraint that the left side cannot cross the left
input boundary" — because rectangles whose *centers* lie outside the
query can still intersect it.  Within a bucket the estimate is then

    count · Area(Q' ∩ B) / Area(B)

where Q' is the extended query and B the bucket box.  A point query is a
zero-extent range query and needs no special case: the extension gives it
the average-density answer TA/Area of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Rect, RectSet


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket (the paper's eight words of state).

    Attributes
    ----------
    bbox:
        The bucket's bounding box (four words).
    count:
        Number of input rectangles assigned to the bucket.
    avg_width, avg_height:
        Mean extents of the member rectangles (0.0 when empty).
    avg_density:
        Mean spatial density inside the bucket — the expected result of
        a point query within the box.  Stored for introspection; the
        estimation formulas derive what they need from the other fields.
    """

    bbox: Rect
    count: int
    avg_width: float = 0.0
    avg_height: float = 0.0
    avg_density: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("bucket count must be non-negative")
        if self.avg_width < 0 or self.avg_height < 0:
            raise ValueError("average extents must be non-negative")

    # ------------------------------------------------------------------
    @classmethod
    def from_members(cls, bbox: Rect, members: RectSet) -> "Bucket":
        """Build a bucket summarising ``members`` within ``bbox``."""
        count = len(members)
        if count == 0:
            return cls(bbox, 0)
        area = bbox.area
        density = members.total_area() / area if area > 0 else float(count)
        return cls(
            bbox,
            count,
            avg_width=members.avg_width(),
            avg_height=members.avg_height(),
            avg_density=density,
        )

    # ------------------------------------------------------------------
    # incremental member updates (live maintenance)
    # ------------------------------------------------------------------
    def with_inserted(self, rect: Rect) -> "Bucket":
        """This bucket's summary after ``rect`` joins its members.

        Running averages are updated exactly as
        :meth:`from_members` would compute them over the enlarged
        member set; the density stays "total member area over bucket
        area" (a degenerate bucket box counts each member as one full
        unit of density, mirroring :meth:`from_members`).
        """
        new_count = self.count + 1
        avg_w = (self.avg_width * self.count + rect.width) / new_count
        avg_h = (self.avg_height * self.count + rect.height) / new_count
        area = self.bbox.area
        density = self.avg_density + (
            rect.area / area if area > 0 else 1.0
        )
        return Bucket(
            self.bbox, new_count, avg_width=avg_w, avg_height=avg_h,
            avg_density=density,
        )

    def with_deleted(self, rect: Rect) -> "Bucket":
        """This bucket's summary after one member equal to ``rect``
        leaves.

        The empty-bucket case is guarded here, in one place: removing
        the last member yields count 0 with zero averages instead of
        dividing by zero.  An already-empty bucket is returned
        unchanged (the summary has nothing left to subtract from).
        Accumulated float error can drive a running average slightly
        negative on the way down; averages are clamped at 0.0 so the
        :class:`Bucket` invariants hold.  The clamp *absorbs* that
        error instead of cancelling it, so a long insert/delete stream
        drifts the running summary away from what
        :meth:`from_members` would compute — which is why
        ``MaintainedHistogram.refresh`` re-derives every summary
        exactly from the retained rows rather than trusting these
        incremental values.
        """
        if self.count == 0:
            return self
        new_count = self.count - 1
        if new_count == 0:
            return Bucket(self.bbox, 0)
        avg_w = max(
            (self.avg_width * self.count - rect.width) / new_count, 0.0
        )
        avg_h = max(
            (self.avg_height * self.count - rect.height) / new_count,
            0.0,
        )
        area = self.bbox.area
        density = max(
            self.avg_density - (rect.area / area if area > 0 else 1.0),
            0.0,
        )
        return Bucket(
            self.bbox, new_count, avg_width=avg_w, avg_height=avg_h,
            avg_density=density,
        )

    # ------------------------------------------------------------------
    def estimate(self, query: Rect) -> float:
        """Expected number of member rectangles intersecting ``query``.

        Implements the Section 3.1 range formula within this bucket.
        """
        if self.count == 0:
            return 0.0
        box = self.bbox
        area = box.area
        if area <= 0.0:
            # Degenerate box (e.g. co-located point data): every member
            # intersects the query iff the query touches the box.
            return float(self.count) if box.intersects(query) else 0.0

        # Extend the query outward by half the average extent per side
        # (one full average extent per axis in total, as in Section 3.1,
        # but symmetric because membership is decided by rect *centers*),
        # clamped to the bucket box.
        half_w = self.avg_width / 2.0
        half_h = self.avg_height / 2.0
        ex1 = max(box.x1, query.x1 - half_w)
        ex2 = min(box.x2, query.x2 + half_w)
        ey1 = max(box.y1, query.y1 - half_h)
        ey2 = min(box.y2, query.y2 + half_h)
        overlap_w = ex2 - ex1
        overlap_h = ey2 - ey1
        if overlap_w <= 0.0 or overlap_h <= 0.0:
            return 0.0
        fraction = (overlap_w * overlap_h) / area
        return self.count * min(fraction, 1.0)


class BucketArrays:
    """Columnar view of a bucket list for the vectorised kernel.

    Precomputing the per-bucket columns once (instead of on every
    ``estimate_many`` call) is what makes the kernel usable as the
    *scalar* fast path too: a single query is simply a batch of one,
    and because numpy evaluates every element of a ``(Q, B)`` block
    independently — and reduces each row with the same pairwise
    algorithm regardless of ``Q`` — a batch-of-one answer is
    bit-identical to the corresponding element of any larger batch.
    The differential serving suite relies on that equivalence.
    """

    __slots__ = (
        "n", "x1", "y1", "x2", "y2", "counts", "half_w", "half_h",
        "safe_areas", "degenerate", "any_degenerate",
    )

    def __init__(self, buckets: Sequence[Bucket]) -> None:
        self.n = len(buckets)
        self.x1 = np.array([b.bbox.x1 for b in buckets],
                           dtype=np.float64)
        self.y1 = np.array([b.bbox.y1 for b in buckets],
                           dtype=np.float64)
        self.x2 = np.array([b.bbox.x2 for b in buckets],
                           dtype=np.float64)
        self.y2 = np.array([b.bbox.y2 for b in buckets],
                           dtype=np.float64)
        self.counts = np.array([float(b.count) for b in buckets],
                               dtype=np.float64)
        self.half_w = np.array([b.avg_width / 2.0 for b in buckets],
                               dtype=np.float64)
        self.half_h = np.array([b.avg_height / 2.0 for b in buckets],
                               dtype=np.float64)
        areas = (self.x2 - self.x1) * (self.y2 - self.y1)
        self.degenerate = (areas <= 0.0) & (self.counts > 0)
        self.any_degenerate = bool(self.degenerate.any())
        self.safe_areas = np.where(areas > 0.0, areas, 1.0)

    def select(self, indices: np.ndarray) -> "BucketArrays":
        """Subset view over ``indices`` (for index-pruned probing)."""
        sub = object.__new__(BucketArrays)
        sub.n = int(np.asarray(indices).shape[0])
        sub.x1 = self.x1[indices]
        sub.y1 = self.y1[indices]
        sub.x2 = self.x2[indices]
        sub.y2 = self.y2[indices]
        sub.counts = self.counts[indices]
        sub.half_w = self.half_w[indices]
        sub.half_h = self.half_h[indices]
        sub.safe_areas = self.safe_areas[indices]
        sub.degenerate = self.degenerate[indices]
        sub.any_degenerate = bool(sub.degenerate.any())
        return sub

    def estimate_block(self, qcoords: np.ndarray) -> np.ndarray:
        """Per-query sum of bucket estimates for an ``(M, 4)`` block.

        One broadcast evaluation of the Section 3.1 range formula over
        every (query, bucket) pair, reduced over buckets.
        """
        m = qcoords.shape[0]
        if m == 0 or self.n == 0:
            return np.zeros(m, dtype=np.float64)
        return self.estimate_terms(qcoords).sum(axis=1)

    def estimate_terms(self, qcoords: np.ndarray) -> np.ndarray:
        """The ``(M, B)`` per-bucket terms :meth:`estimate_block` sums.

        Exposed unreduced so an index-pruned probe can evaluate the
        formula over its candidate subset only, scatter the terms back
        into a full-width row and reduce over the *original* bucket
        axis: numpy's reduction groups partial sums by array length,
        so summing a shorter candidate vector rounds differently in
        the last ulp than summing the full row with zeros in the
        pruned slots.  Scatter-then-reduce keeps pruning bit-identical
        to the unpruned scan.
        """
        m = qcoords.shape[0]
        if m == 0 or self.n == 0:
            return np.zeros((m, self.n), dtype=np.float64)
        qx1 = qcoords[:, 0][:, np.newaxis]
        qy1 = qcoords[:, 1][:, np.newaxis]
        qx2 = qcoords[:, 2][:, np.newaxis]
        qy2 = qcoords[:, 3][:, np.newaxis]

        ex1 = np.maximum(self.x1, qx1 - self.half_w)
        ex2 = np.minimum(self.x2, qx2 + self.half_w)
        ey1 = np.maximum(self.y1, qy1 - self.half_h)
        ey2 = np.minimum(self.y2, qy2 + self.half_h)
        overlap = (
            np.clip(ex2 - ex1, 0.0, None) * np.clip(ey2 - ey1, 0.0, None)
        )
        fraction = np.minimum(overlap / self.safe_areas, 1.0)
        estimates = (self.counts * fraction).astype(np.float64)

        if self.any_degenerate:
            touches = (
                (self.x1 <= qx2) & (self.x2 >= qx1)
                & (self.y1 <= qy2) & (self.y2 >= qy1)
            )
            estimates = np.where(
                self.degenerate,
                np.where(touches, self.counts, 0.0),
                estimates,
            )
        return estimates

    def fraction_block(self, qcoords: np.ndarray) -> np.ndarray:
        """``(M, B)`` matrix of the Section 3.1 overlap fractions.

        Entry ``(q, b)`` is the fraction of bucket ``b``'s box covered
        by query ``q`` after the average-extent extension — the factor
        the range formula multiplies the bucket count by.  A
        degenerate box contributes 1.0 when the query touches it,
        matching :meth:`estimate_block`.  The feedback tuner uses this
        matrix to attribute per-query estimation error to buckets.
        """
        m = qcoords.shape[0]
        if m == 0 or self.n == 0:
            return np.zeros((m, self.n), dtype=np.float64)
        qx1 = qcoords[:, 0][:, np.newaxis]
        qy1 = qcoords[:, 1][:, np.newaxis]
        qx2 = qcoords[:, 2][:, np.newaxis]
        qy2 = qcoords[:, 3][:, np.newaxis]

        ex1 = np.maximum(self.x1, qx1 - self.half_w)
        ex2 = np.minimum(self.x2, qx2 + self.half_w)
        ey1 = np.maximum(self.y1, qy1 - self.half_h)
        ey2 = np.minimum(self.y2, qy2 + self.half_h)
        overlap = (
            np.clip(ex2 - ex1, 0.0, None) * np.clip(ey2 - ey1, 0.0, None)
        )
        fraction = np.minimum(overlap / self.safe_areas, 1.0)
        areas = (self.x2 - self.x1) * (self.y2 - self.y1)
        if bool((areas <= 0.0).any()):
            touches = (
                (self.x1 <= qx2) & (self.x2 >= qx1)
                & (self.y1 <= qy2) & (self.y2 >= qy1)
            )
            fraction = np.where(
                areas <= 0.0,
                np.where(touches, 1.0, 0.0),
                fraction,
            )
        return fraction


def estimate_many(
    buckets: Sequence[Bucket],
    queries: RectSet,
    *,
    chunk_size: int = 1024,
) -> np.ndarray:
    """Vectorised sum of per-bucket estimates for many queries.

    Equivalent to ``sum(b.estimate(q) for b in buckets)`` per query but
    evaluated as (query-chunk × bucket) numpy blocks, which is what makes
    10 000-query experiment sweeps practical.
    """
    return estimate_many_arrays(
        BucketArrays(buckets), queries, chunk_size=chunk_size
    )


def estimate_many_arrays(
    arrays: BucketArrays,
    queries: RectSet,
    *,
    chunk_size: int = 1024,
) -> np.ndarray:
    """:func:`estimate_many` over precomputed :class:`BucketArrays`.

    Chunking bounds peak memory at ``chunk_size × B`` doubles; chunk
    boundaries cannot change any answer because every row of the block
    is evaluated independently.
    """
    n_queries = len(queries)
    result = np.zeros(n_queries, dtype=np.float64)
    if n_queries == 0 or arrays.n == 0:
        return result
    qc = queries.coords
    for start in range(0, n_queries, chunk_size):
        block = qc[start:start + chunk_size]
        result[start:start + block.shape[0]] = \
            arrays.estimate_block(block)
    return result


def _max_edges(boxes: Sequence[Rect]) -> Tuple[float, float]:
    """Global maximum x/y edge over ``boxes`` (the closed boundary)."""
    return (
        max(box.x2 for box in boxes),
        max(box.y2 for box in boxes),
    )


def owner_of_center(
    cx: float, cy: float, boxes: Sequence[Rect]
) -> Optional[int]:
    """Index of the box owning center ``(cx, cy)``, or ``None``.

    **The tie rule** (shared by every center-assignment path — this
    scalar probe, :func:`assign_by_center`, the Min-Skew grid
    labelling, and ``ShardPlan`` routing): each box is half-open,
    ``[x1, x2) × [y1, y2)``, *except* along the global maximum edges
    of the box list, where it is closed.  A center sitting exactly on
    a shared split coordinate therefore belongs to exactly one box
    (the upper/right neighbour), and a center on the layout MBR's max
    edge is still covered.  Boxes that genuinely overlap (non-BSP
    layouts) resolve first-wins, in list order.
    """
    if not boxes:
        return None
    gx2, gy2 = _max_edges(boxes)
    for idx, box in enumerate(boxes):
        in_x = cx >= box.x1 and (
            cx <= box.x2 if box.x2 >= gx2 else cx < box.x2
        )
        in_y = cy >= box.y1 and (
            cy <= box.y2 if box.y2 >= gy2 else cy < box.y2
        )
        if in_x and in_y:
            return idx
    return None


def assign_by_center(
    rects: RectSet, boxes: Sequence[Rect]
) -> np.ndarray:
    """Assign each rectangle to the box owning its center.

    Returns an ``int64`` array of box indices, −1 where no box owns
    the center.  Ownership follows the documented half-open tie rule
    of :func:`owner_of_center` — boxes are ``[x1, x2) × [y1, y2)``
    except along the global max edges, which are closed — so a center
    lying exactly on a shared split coordinate lands in exactly one
    box, matching the grid-label assignment used by Min-Skew
    construction and shard routing.  Used by partitioners whose boxes
    are disjoint covers (the BSP families); O(N × B) vectorised.
    """
    assignment = np.full(len(rects), -1, dtype=np.int64)
    if len(rects) == 0 or not boxes:
        return assignment
    centers = rects.centers()
    gx2, gy2 = _max_edges(boxes)
    for idx, box in enumerate(boxes):
        unassigned = assignment == -1
        if not unassigned.any():
            break
        cx = centers[unassigned, 0]
        cy = centers[unassigned, 1]
        in_x = (cx >= box.x1) & (
            (cx <= box.x2) if box.x2 >= gx2 else (cx < box.x2)
        )
        in_y = (cy >= box.y1) & (
            (cy <= box.y2) if box.y2 >= gy2 else (cy < box.y2)
        )
        inside = in_x & in_y
        target = np.flatnonzero(unassigned)[inside]
        assignment[target] = idx
    return assignment


def buckets_from_assignment(
    rects: RectSet,
    boxes: Sequence[Rect],
    assignment: np.ndarray,
) -> List[Bucket]:
    """Build one :class:`Bucket` per box from an assignment vector.

    The sums accumulate per label via ``bincount``, which associates
    additions differently from the pairwise ``np.mean`` reduction in
    :meth:`Bucket.from_members`; the two can disagree in the last
    ulp.  Callers needing the exact ``from_members`` form (the
    maintenance refresh, the feedback tuner) use
    :func:`buckets_from_members` instead.
    """
    n_boxes = len(boxes)
    assigned = assignment >= 0
    labels = assignment[assigned]
    counts = np.bincount(labels, minlength=n_boxes).astype(np.int64)
    sum_w = np.bincount(
        labels, weights=rects.widths[assigned], minlength=n_boxes
    )
    sum_h = np.bincount(
        labels, weights=rects.heights[assigned], minlength=n_boxes
    )
    sum_area = np.bincount(
        labels, weights=rects.areas[assigned], minlength=n_boxes
    )
    buckets: List[Bucket] = []
    for i, box in enumerate(boxes):
        c = int(counts[i])
        if c == 0:
            buckets.append(Bucket(box, 0))
            continue
        area = box.area
        buckets.append(
            Bucket(
                box,
                c,
                avg_width=float(sum_w[i] / c),
                avg_height=float(sum_h[i] / c),
                avg_density=float(sum_area[i] / area) if area > 0 else
                float(c),
            )
        )
    return buckets


def buckets_from_members(
    rects: RectSet,
    boxes: Sequence[Rect],
    assignment: Optional[np.ndarray] = None,
) -> List[Bucket]:
    """Exact per-box summaries via :meth:`Bucket.from_members`.

    Bit-for-bit equal to building each bucket as
    ``Bucket.from_members(box, rects.select(assignment == i))`` — a
    guarantee :func:`buckets_from_assignment` does *not* make (see
    its docstring).  The maintenance refresh and the feedback tuner
    use this form so a drifted incremental summary lands exactly
    where a fresh ``from_members`` rebuild would.
    """
    if assignment is None:
        assignment = assign_by_center(rects, boxes)
    return [
        Bucket.from_members(box, rects.select(assignment == i))
        for i, box in enumerate(boxes)
    ]

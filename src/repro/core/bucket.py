"""Histogram buckets and the per-bucket uniformity-assumption formulas.

Every bucket-based technique in the paper (Equi-Area, Equi-Count, R-Tree,
Min-Skew) produces a set of buckets and answers queries by "applying the
uniformity assumption (and the corresponding formulae developed in
Section 3.1) individually to each bucket".

A bucket stores exactly the eight words of Section 5.4: the four
bounding-box coordinates, the average density, the rectangle count, and
the average width and height of the member rectangles.

The range formula (Section 3.1) extends each query side outward by the
average extent — "the left side of the query [is extended] by the average
width subject to the constraint that the left side cannot cross the left
input boundary" — because rectangles whose *centers* lie outside the
query can still intersect it.  Within a bucket the estimate is then

    count · Area(Q' ∩ B) / Area(B)

where Q' is the extended query and B the bucket box.  A point query is a
zero-extent range query and needs no special case: the extension gives it
the average-density answer TA/Area of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..geometry import Rect, RectSet


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket (the paper's eight words of state).

    Attributes
    ----------
    bbox:
        The bucket's bounding box (four words).
    count:
        Number of input rectangles assigned to the bucket.
    avg_width, avg_height:
        Mean extents of the member rectangles (0.0 when empty).
    avg_density:
        Mean spatial density inside the bucket — the expected result of
        a point query within the box.  Stored for introspection; the
        estimation formulas derive what they need from the other fields.
    """

    bbox: Rect
    count: int
    avg_width: float = 0.0
    avg_height: float = 0.0
    avg_density: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("bucket count must be non-negative")
        if self.avg_width < 0 or self.avg_height < 0:
            raise ValueError("average extents must be non-negative")

    # ------------------------------------------------------------------
    @classmethod
    def from_members(cls, bbox: Rect, members: RectSet) -> "Bucket":
        """Build a bucket summarising ``members`` within ``bbox``."""
        count = len(members)
        if count == 0:
            return cls(bbox, 0)
        area = bbox.area
        density = members.total_area() / area if area > 0 else float(count)
        return cls(
            bbox,
            count,
            avg_width=members.avg_width(),
            avg_height=members.avg_height(),
            avg_density=density,
        )

    # ------------------------------------------------------------------
    def estimate(self, query: Rect) -> float:
        """Expected number of member rectangles intersecting ``query``.

        Implements the Section 3.1 range formula within this bucket.
        """
        if self.count == 0:
            return 0.0
        box = self.bbox
        area = box.area
        if area <= 0.0:
            # Degenerate box (e.g. co-located point data): every member
            # intersects the query iff the query touches the box.
            return float(self.count) if box.intersects(query) else 0.0

        # Extend the query outward by half the average extent per side
        # (one full average extent per axis in total, as in Section 3.1,
        # but symmetric because membership is decided by rect *centers*),
        # clamped to the bucket box.
        half_w = self.avg_width / 2.0
        half_h = self.avg_height / 2.0
        ex1 = max(box.x1, query.x1 - half_w)
        ex2 = min(box.x2, query.x2 + half_w)
        ey1 = max(box.y1, query.y1 - half_h)
        ey2 = min(box.y2, query.y2 + half_h)
        overlap_w = ex2 - ex1
        overlap_h = ey2 - ey1
        if overlap_w <= 0.0 or overlap_h <= 0.0:
            return 0.0
        fraction = (overlap_w * overlap_h) / area
        return self.count * min(fraction, 1.0)


def estimate_many(
    buckets: Sequence[Bucket],
    queries: RectSet,
    *,
    chunk_size: int = 1024,
) -> np.ndarray:
    """Vectorised sum of per-bucket estimates for many queries.

    Equivalent to ``sum(b.estimate(q) for b in buckets)`` per query but
    evaluated as (query-chunk × bucket) numpy blocks, which is what makes
    10 000-query experiment sweeps practical.
    """
    n_queries = len(queries)
    result = np.zeros(n_queries, dtype=np.float64)
    if n_queries == 0 or not buckets:
        return result

    bx1 = np.array([b.bbox.x1 for b in buckets])
    by1 = np.array([b.bbox.y1 for b in buckets])
    bx2 = np.array([b.bbox.x2 for b in buckets])
    by2 = np.array([b.bbox.y2 for b in buckets])
    counts = np.array([float(b.count) for b in buckets])
    half_w = np.array([b.avg_width / 2.0 for b in buckets])
    half_h = np.array([b.avg_height / 2.0 for b in buckets])
    areas = (bx2 - bx1) * (by2 - by1)

    degenerate = (areas <= 0.0) & (counts > 0)
    safe_areas = np.where(areas > 0.0, areas, 1.0)

    qc = queries.coords
    for start in range(0, n_queries, chunk_size):
        block = qc[start:start + chunk_size]
        qx1 = block[:, 0][:, np.newaxis]
        qy1 = block[:, 1][:, np.newaxis]
        qx2 = block[:, 2][:, np.newaxis]
        qy2 = block[:, 3][:, np.newaxis]

        ex1 = np.maximum(bx1, qx1 - half_w)
        ex2 = np.minimum(bx2, qx2 + half_w)
        ey1 = np.maximum(by1, qy1 - half_h)
        ey2 = np.minimum(by2, qy2 + half_h)
        overlap = (
            np.clip(ex2 - ex1, 0.0, None) * np.clip(ey2 - ey1, 0.0, None)
        )
        fraction = np.minimum(overlap / safe_areas, 1.0)
        estimates = (counts * fraction).astype(np.float64)

        if degenerate.any():
            touches = (
                (bx1 <= qx2) & (bx2 >= qx1) & (by1 <= qy2) & (by2 >= qy1)
            )
            estimates = np.where(
                degenerate, np.where(touches, counts, 0.0), estimates
            )

        result[start:start + block.shape[0]] = estimates.sum(axis=1)
    return result


def assign_by_center(
    rects: RectSet, boxes: Sequence[Rect]
) -> np.ndarray:
    """Assign each rectangle to the first box containing its center.

    Returns an ``int64`` array of box indices, −1 where no box contains
    the center.  Used by partitioners whose boxes are disjoint covers
    (the BSP families); O(N × B) vectorised.
    """
    centers = rects.centers()
    assignment = np.full(len(rects), -1, dtype=np.int64)
    for idx, box in enumerate(boxes):
        unassigned = assignment == -1
        if not unassigned.any():
            break
        cx = centers[unassigned, 0]
        cy = centers[unassigned, 1]
        inside = (
            (cx >= box.x1) & (cx <= box.x2)
            & (cy >= box.y1) & (cy <= box.y2)
        )
        target = np.flatnonzero(unassigned)[inside]
        assignment[target] = idx
    return assignment


def buckets_from_assignment(
    rects: RectSet,
    boxes: Sequence[Rect],
    assignment: np.ndarray,
) -> List[Bucket]:
    """Build one :class:`Bucket` per box from an assignment vector."""
    n_boxes = len(boxes)
    counts = np.bincount(
        assignment[assignment >= 0], minlength=n_boxes
    ).astype(np.int64)
    sum_w = np.bincount(
        assignment[assignment >= 0],
        weights=rects.widths[assignment >= 0],
        minlength=n_boxes,
    )
    sum_h = np.bincount(
        assignment[assignment >= 0],
        weights=rects.heights[assignment >= 0],
        minlength=n_boxes,
    )
    sum_area = np.bincount(
        assignment[assignment >= 0],
        weights=rects.areas[assignment >= 0],
        minlength=n_boxes,
    )
    buckets: List[Bucket] = []
    for i, box in enumerate(boxes):
        c = int(counts[i])
        if c == 0:
            buckets.append(Bucket(box, 0))
            continue
        area = box.area
        buckets.append(
            Bucket(
                box,
                c,
                avg_width=float(sum_w[i] / c),
                avg_height=float(sum_h[i] / c),
                avg_density=float(sum_area[i] / area) if area > 0 else
                float(c),
            )
        )
    return buckets

"""The Min-Skew partitioning (paper Section 4.1) — the primary contribution.

Min-Skew builds a binary space partitioning over a uniform grid of
spatial densities, greedily splitting whichever bucket's best split
yields the greatest reduction in spatial skew (Definition 4.1):

    while there are less buckets than needed:
        for each current bucket:
            find the split point along its dimensions producing the
            maximum reduction in spatial-skew
        split the bucket with the greatest reduction
    assign each input rectangle to the bucket containing its center

Two implementation devices from the paper are reproduced faithfully:

* the input is the **density grid**, not the raw data, so construction
  memory is O(regions) regardless of dataset size;
* split decisions are based on **marginal frequency distributions** per
  dimension rather than the full 2-D distribution
  (``split_policy="marginal"``, the default).  An exact 2-D SSE split
  search (``split_policy="exact"``) is provided as an ablation.

Progressive refinement (Section 5.6) is driven by the ``refinements``
parameter: construction starts on a grid coarsened by 4**r and the grid
is refined ×4 (2× per axis, densities recomputed from the data) at equal
bucket intervals — see :mod:`repro.core.progressive` for the schedule
helper and the rationale.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Rect, RectSet
from ..grid import BlockStats, DensityGrid, best_split_of_marginal, \
    square_grid_shape
from ..obs import OBS
from ..partitioners.base import Partitioner
from .bucket import Bucket

SPLIT_POLICIES = ("marginal", "exact")


class _Block:
    """A bucket under construction: an inclusive grid cell block."""

    __slots__ = ("ix0", "ix1", "iy0", "iy1", "alive", "best")

    def __init__(self, ix0: int, ix1: int, iy0: int, iy1: int) -> None:
        self.ix0 = ix0
        self.ix1 = ix1
        self.iy0 = iy0
        self.iy1 = iy1
        self.alive = True
        # (reduction, axis, offset) of the best split, or None when the
        # block is a single cell and cannot be split
        self.best: Optional[Tuple[float, int, int]] = None

    @property
    def width(self) -> int:
        return self.ix1 - self.ix0 + 1

    @property
    def height(self) -> int:
        return self.iy1 - self.iy0 + 1

    @property
    def n_cells(self) -> int:
        return self.width * self.height

    def scaled(self, factor: int) -> "_Block":
        """The same block on a grid refined by ``factor`` per axis."""
        return _Block(
            self.ix0 * factor,
            self.ix1 * factor + (factor - 1),
            self.iy0 * factor,
            self.iy1 * factor + (factor - 1),
        )


@dataclass
class SplitRecord:
    """One greedy step, for tracing/illustration (paper Figure 6)."""

    bucket_box: Rect
    axis: int  # 0 = vertical split line (x axis), 1 = horizontal
    position: float  # data-space coordinate of the split line
    skew_reduction: float


@dataclass
class MinSkewResult:
    """Everything the construction produced.

    Attributes
    ----------
    buckets:
        The final bucket summaries (what an estimator consumes).
    blocks:
        The final cell blocks ``(ix0, ix1, iy0, iy1)`` on ``grid``.
    grid:
        The (possibly refined) density grid construction finished on.
    trace:
        Per-split records, populated when tracing is enabled.
    """

    buckets: List[Bucket]
    blocks: List[Tuple[int, int, int, int]]
    grid: DensityGrid
    trace: List[SplitRecord] = field(default_factory=list)


class MinSkewPartitioner(Partitioner):
    """Greedy BSP minimising spatial skew over a density grid.

    Parameters
    ----------
    n_buckets:
        Bucket quota β.
    n_regions:
        Total number of grid regions used to approximate the input
        (the paper's default for the main experiments is 10 000).  The
        grid shape is chosen so cells are roughly square in data space;
        when ``refinements > 0`` this is the *final* region count, as in
        the paper's Example 3.
    refinements:
        Number of progressive-refinement steps (0 = plain Min-Skew).
    split_policy:
        ``"marginal"`` (paper's implementation: split search on marginal
        frequency distributions) or ``"exact"`` (full 2-D SSE search).
    trace:
        Record a :class:`SplitRecord` per greedy step.
    """

    name = "Min-Skew"

    def __init__(
        self,
        n_buckets: int,
        *,
        n_regions: int = 10_000,
        refinements: int = 0,
        split_policy: str = "marginal",
        trace: bool = False,
    ) -> None:
        super().__init__(n_buckets)
        if n_regions < 1:
            raise ValueError("n_regions must be at least 1")
        if refinements < 0:
            raise ValueError("refinements must be non-negative")
        if split_policy not in SPLIT_POLICIES:
            raise ValueError(
                f"unknown split_policy {split_policy!r}; "
                f"choose from {SPLIT_POLICIES}"
            )
        self.n_regions = n_regions
        self.refinements = refinements
        self.split_policy = split_policy
        self.trace = trace

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def partition(
        self, rects: RectSet, *, bounds: Optional[Rect] = None
    ) -> List[Bucket]:
        return self.partition_full(rects, bounds=bounds).buckets

    def partition_full(
        self, rects: RectSet, *, bounds: Optional[Rect] = None
    ) -> MinSkewResult:
        """Run the construction and return buckets plus internals."""
        if len(rects) == 0:
            raise ValueError("cannot partition an empty distribution")
        if bounds is None:
            bounds = rects.mbr()
        if bounds.area <= 0:
            # Degenerate input space (all rects on a point/line): a
            # single bucket describes it exactly.
            grid = DensityGrid(
                np.array([[float(len(rects))]]),
                Rect(bounds.x1, bounds.y1, bounds.x1 + 1.0,
                     bounds.y1 + 1.0),
                source=rects,
            )
            bucket = Bucket.from_members(bounds, rects)
            return MinSkewResult([bucket], [(0, 0, 0, 0)], grid)

        with OBS.timer("minskew.partition"):
            with OBS.timer("minskew.initial_grid"):
                grid = self._initial_grid(rects, bounds)
            with OBS.timer("minskew.greedy_split"):
                blocks, grid, trace = self._build_blocks(grid)
            with OBS.timer("minskew.materialise"):
                buckets = self._blocks_to_buckets(rects, grid, blocks)
        return MinSkewResult(buckets, [
            (b.ix0, b.ix1, b.iy0, b.iy1) for b in blocks
        ], grid, trace)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _initial_grid(self, rects: RectSet, bounds: Rect) -> DensityGrid:
        nx, ny = square_grid_shape(self.n_regions, bounds)
        factor = 2 ** self.refinements
        nx0 = max(1, nx // factor)
        ny0 = max(1, ny // factor)
        return DensityGrid.from_rects(rects, nx0, ny0, bounds=bounds)

    def _build_blocks(
        self, grid: DensityGrid
    ) -> Tuple[List[_Block], DensityGrid, List[SplitRecord]]:
        n_stages = self.refinements + 1
        quota_per_stage = max(1, self.n_buckets // n_stages)
        trace: List[SplitRecord] = []

        blocks: List[_Block] = [
            _Block(0, grid.nx - 1, 0, grid.ny - 1)
        ]
        OBS.add("minskew.stages", n_stages)
        for stage in range(n_stages):
            if stage > 0:
                with OBS.timer("minskew.refine_grid"):
                    grid = grid.refined()
                blocks = [b.scaled(2) for b in blocks]
            if stage == n_stages - 1:
                target = self.n_buckets  # absorb rounding in last stage
            else:
                target = min(self.n_buckets, quota_per_stage * (stage + 1))
            stats = BlockStats(grid.densities)
            self._greedy_split(grid, stats, blocks, target, trace)
        return blocks, grid, trace

    def _greedy_split(
        self,
        grid: DensityGrid,
        stats: BlockStats,
        blocks: List[_Block],
        target: int,
        trace: List[SplitRecord],
    ) -> None:
        """Split ``blocks`` in place until there are ``target`` of them."""
        counter = itertools.count()
        heap: List[Tuple[float, int, int, _Block]] = []
        # hot-loop accounting: plain local integers, reported to the
        # metrics registry once per stage (see the batch adds below)
        n_pushes = 0
        n_pops = 0
        n_splits = 0
        cells_scanned = 0

        def push(block: _Block) -> None:
            nonlocal n_pushes, cells_scanned
            cells_scanned += block.n_cells
            block.best = self._evaluate_block(stats, block)
            if block.best is not None:
                n_pushes += 1
                reduction = block.best[0]
                heapq.heappush(
                    heap,
                    (-reduction, -block.n_cells, next(counter), block),
                )

        for b in blocks:
            push(b)

        while len(blocks) < target and heap:
            _, _, _, block = heapq.heappop(heap)
            n_pops += 1
            if not block.alive or block.best is None:
                continue
            n_splits += 1
            reduction, axis, offset = block.best
            block.alive = False
            if axis == 0:
                left = _Block(block.ix0, block.ix0 + offset - 1,
                              block.iy0, block.iy1)
                right = _Block(block.ix0 + offset, block.ix1,
                               block.iy0, block.iy1)
                position = grid.bounds.x1 \
                    + (block.ix0 + offset) * grid.cell_width
            else:
                left = _Block(block.ix0, block.ix1,
                              block.iy0, block.iy0 + offset - 1)
                right = _Block(block.ix0, block.ix1,
                               block.iy0 + offset, block.iy1)
                position = grid.bounds.y1 \
                    + (block.iy0 + offset) * grid.cell_height
            if self.trace:
                trace.append(
                    SplitRecord(
                        grid.block_rect(block.ix0, block.ix1, block.iy0,
                                        block.iy1),
                        axis,
                        position,
                        reduction,
                    )
                )
            blocks.remove(block)
            blocks.append(left)
            blocks.append(right)
            push(left)
            push(right)

        if OBS.enabled:
            OBS.add("minskew.splits", n_splits)
            OBS.add("minskew.heap_pushes", n_pushes)
            OBS.add("minskew.heap_pops", n_pops)
            OBS.add("minskew.cells_scanned", cells_scanned)

    def _evaluate_block(
        self, stats: BlockStats, block: _Block
    ) -> Optional[Tuple[float, int, int]]:
        """Best split of a block: ``(skew_reduction, axis, offset)``.

        ``offset`` is the number of columns (axis 0) or rows (axis 1)
        in the left/bottom part.  Returns None for single-cell blocks.
        """
        if block.n_cells <= 1:
            return None
        if self.split_policy == "marginal":
            return self._evaluate_marginal(stats, block)
        return self._evaluate_exact(stats, block)

    @staticmethod
    def _evaluate_marginal(
        stats: BlockStats, block: _Block
    ) -> Optional[Tuple[float, int, int]]:
        """Split search on the two marginal distributions.

        Marginal SSE is scaled by the block's extent along the *other*
        axis: if densities were constant along that axis, cell-level SSE
        equals marginal SSE divided by the extent, so the scaling makes
        the two axes comparable.
        """
        best: Optional[Tuple[float, int, int]] = None
        if block.width >= 2:
            marginal = stats.marginal_x(block.ix0, block.ix1, block.iy0,
                                        block.iy1)
            k, red = best_split_of_marginal(marginal)
            if k > 0:
                best = (red / block.height, 0, k)
        if block.height >= 2:
            marginal = stats.marginal_y(block.ix0, block.ix1, block.iy0,
                                        block.iy1)
            k, red = best_split_of_marginal(marginal)
            if k > 0 and (best is None or red / block.width > best[0]):
                best = (red / block.width, 1, k)
        return best

    @staticmethod
    def _evaluate_exact(
        stats: BlockStats, block: _Block
    ) -> Optional[Tuple[float, int, int]]:
        """Exact 2-D SSE split search via integral images."""
        ix0, ix1, iy0, iy1 = block.ix0, block.ix1, block.iy0, block.iy1
        whole = stats.block_sse(ix0, ix1, iy0, iy1)
        best: Optional[Tuple[float, int, int]] = None
        for k in range(1, block.width):
            red = whole - stats.block_sse(ix0, ix0 + k - 1, iy0, iy1) \
                - stats.block_sse(ix0 + k, ix1, iy0, iy1)
            if best is None or red > best[0]:
                best = (red, 0, k)
        for k in range(1, block.height):
            red = whole - stats.block_sse(ix0, ix1, iy0, iy0 + k - 1) \
                - stats.block_sse(ix0, ix1, iy0 + k, iy1)
            if best is None or red > best[0]:
                best = (red, 1, k)
        if best is not None:
            best = (max(best[0], 0.0), best[1], best[2])
        return best

    # ------------------------------------------------------------------
    # bucket materialisation
    # ------------------------------------------------------------------
    @staticmethod
    def _blocks_to_buckets(
        rects: RectSet,
        grid: DensityGrid,
        blocks: Sequence[_Block],
    ) -> List[Bucket]:
        """Assign rects to blocks by center and summarise each block."""
        label = np.full((grid.nx, grid.ny), -1, dtype=np.int64)
        for i, b in enumerate(blocks):
            label[b.ix0:b.ix1 + 1, b.iy0:b.iy1 + 1] = i

        centers = rects.centers()
        ix = np.floor(
            (centers[:, 0] - grid.bounds.x1) / grid.cell_width
        ).astype(np.int64)
        iy = np.floor(
            (centers[:, 1] - grid.bounds.y1) / grid.cell_height
        ).astype(np.int64)
        np.clip(ix, 0, grid.nx - 1, out=ix)
        np.clip(iy, 0, grid.ny - 1, out=iy)
        assignment = label[ix, iy]

        n_blocks = len(blocks)
        counts = np.bincount(assignment, minlength=n_blocks)
        sum_w = np.bincount(assignment, weights=rects.widths,
                            minlength=n_blocks)
        sum_h = np.bincount(assignment, weights=rects.heights,
                            minlength=n_blocks)

        stats = BlockStats(grid.densities)
        buckets: List[Bucket] = []
        for i, b in enumerate(blocks):
            box = grid.block_rect(b.ix0, b.ix1, b.iy0, b.iy1)
            c = int(counts[i])
            mean_density = stats.block_mean(b.ix0, b.ix1, b.iy0, b.iy1)
            if c == 0:
                buckets.append(Bucket(box, 0, avg_density=mean_density))
            else:
                buckets.append(
                    Bucket(
                        box,
                        c,
                        avg_width=float(sum_w[i] / c),
                        avg_height=float(sum_h[i] / c),
                        avg_density=mean_density,
                    )
                )
        return buckets

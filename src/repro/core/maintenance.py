"""Incremental maintenance of bucket summaries.

The paper builds its histograms offline; a production system also needs
to keep them usable while the underlying table changes, rebuilding only
occasionally (PostgreSQL's ANALYZE model).  This extension module keeps
a bucket summary approximately in sync under inserts and deletes:

* an inserted rectangle increments the count (and running average
  extents) of the bucket containing its center — the same center rule
  the construction uses;
* a deleted rectangle decrements them;
* inserts whose center no bucket covers are counted as *drift* (the
  summary's box layout no longer matches the data);
* when drift exceeds a threshold, :meth:`MaintainedHistogram.refresh`
  rebuilds the partitioning from the current data.

The bucket *layout* is never changed incrementally — only the per-bucket
statistics — so estimates degrade gracefully between rebuilds instead of
breaking.  The accompanying tests measure exactly that degradation.

Every mutation that the histogram accepts bumps a monotonically
increasing **epoch** (:attr:`MaintainedHistogram.epoch`).  The epoch is
the staleness contract of the live-serving path: any consumer holding a
derived summary — a :class:`~repro.core.bucket.BucketArrays` kernel
snapshot, a :class:`~repro.serving.BucketIndex`, a
:class:`~repro.serving.QueryCache` entry — records the epoch it was
built from and must rebuild (or flush) when the histogram's epoch has
moved past it.  Epoch bumps deliberately over-approximate "the bucket
statistics changed" (an uncovered insert changes only the raw data, yet
still bumps) because a spurious rebuild costs time while a missed one
serves wrong answers.

Mutations report under the ``maintenance.*`` counter namespace in
:data:`repro.obs.OBS` (``maintenance.inserts``,
``maintenance.deletes``, ``maintenance.delete_misses``,
``maintenance.uncovered_inserts``, ``maintenance.refreshes``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry import Rect, RectSet
from ..obs import OBS
from ..partitioners.base import Partitioner
from .bucket import Bucket, buckets_from_members, owner_of_center


class MaintainedHistogram:
    """A bucket summary that tracks inserts/deletes between rebuilds.

    Parameters
    ----------
    partitioner:
        Used for the initial build and for every :meth:`refresh`.
    data:
        The initial distribution.
    drift_threshold:
        Fraction of the current size after which :attr:`needs_refresh`
        turns true (uncovered inserts + total modifications are both
        counted against it).
    """

    def __init__(
        self,
        partitioner: Partitioner,
        data: RectSet,
        *,
        drift_threshold: float = 0.2,
    ) -> None:
        if not 0.0 < drift_threshold <= 1.0:
            raise ValueError("drift_threshold must be in (0, 1]")
        self._partitioner = partitioner
        self._drift_threshold = drift_threshold
        self._rows: List[np.ndarray] = [row.copy() for row in data.coords]
        self.buckets: List[Bucket] = partitioner.partition(data)
        self._modifications = 0
        self._uncovered = 0
        self._epoch = 0

    def state(self) -> dict:
        """JSON-serialisable snapshot of the full mutable state.

        Bucket rows use the :func:`repro.storage.persist.save_buckets`
        layout (``[x1, y1, x2, y2, count, avg_w, avg_h, avg_density]``);
        Python floats round-trip JSON exactly, so
        :meth:`from_state` reconstructs a bit-identical histogram.
        """
        return {
            "epoch": self._epoch,
            "modifications": self._modifications,
            "uncovered": self._uncovered,
            "buckets": [
                [
                    b.bbox.x1, b.bbox.y1, b.bbox.x2, b.bbox.y2,
                    int(b.count), b.avg_width, b.avg_height,
                    b.avg_density,
                ]
                for b in self.buckets
            ],
            "rows": [
                [float(v) for v in row] for row in self._rows
            ],
        }

    @classmethod
    def from_state(
        cls,
        partitioner: Partitioner,
        state: dict,
        *,
        drift_threshold: float = 0.2,
    ) -> "MaintainedHistogram":
        """Reconstruct a histogram from a :meth:`state` snapshot.

        The recovery path of the sharded serving tier: a respawned
        worker restores the last checkpoint *without* re-running the
        partitioner, because the bucket statistics drift incrementally
        under mutations — a rebuild from the raw data would be a
        different (epoch-0) summary, not the pre-crash one.  Every
        field of the mutable state is restored verbatim, so the result
        is bit-identical to the instance the state was captured from.
        """
        hist = cls.__new__(cls)
        hist._partitioner = partitioner
        hist._drift_threshold = drift_threshold
        hist._rows = [
            np.asarray(row, dtype=np.float64)
            for row in state["rows"]
        ]
        hist.buckets = [
            Bucket(
                Rect(float(r[0]), float(r[1]), float(r[2]),
                     float(r[3])),
                int(r[4]),
                avg_width=float(r[5]),
                avg_height=float(r[6]),
                avg_density=float(r[7]),
            )
            for r in state["buckets"]
        ]
        hist._modifications = int(state["modifications"])
        hist._uncovered = int(state["uncovered"])
        hist._epoch = int(state["epoch"])
        return hist

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def epoch(self) -> int:
        """Monotonic version of the bucket summary.

        Starts at 0 and increases by one for every accepted mutation
        (:meth:`insert`, successful :meth:`delete`, :meth:`refresh`).
        A consumer that recorded ``epoch`` when it derived state from
        :attr:`buckets` is stale exactly when the property has moved.
        """
        return self._epoch

    @property
    def modifications_since_refresh(self) -> int:
        return self._modifications

    @property
    def uncovered_inserts(self) -> int:
        return self._uncovered

    @property
    def needs_refresh(self) -> bool:
        """True when accumulated drift warrants a rebuild."""
        n = max(len(self._rows), 1)
        return (
            self._modifications >= self._drift_threshold * n
            or self._uncovered >= 0.25 * self._drift_threshold * n
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _find_bucket(self, cx: float, cy: float) -> Optional[int]:
        # The shared half-open tie rule (see owner_of_center): a
        # center exactly on a split coordinate updates the same bucket
        # that assign_by_center / the grid labelling would give it.
        return owner_of_center(
            cx, cy, [b.bbox for b in self.buckets]
        )

    def insert(self, rect: Rect) -> None:
        """Add a rectangle; update the covering bucket's statistics."""
        self._rows.append(np.asarray(rect.as_tuple(), dtype=np.float64))
        self._modifications += 1
        self._epoch += 1
        OBS.add("maintenance.inserts")
        cx, cy = rect.center
        idx = self._find_bucket(cx, cy)
        if idx is None:
            self._uncovered += 1
            OBS.add("maintenance.uncovered_inserts")
            return
        self.buckets[idx] = self.buckets[idx].with_inserted(rect)

    def delete(self, rect: Rect) -> bool:
        """Remove one rectangle equal to ``rect``.

        Returns False (and changes nothing — the epoch included) if no
        such rectangle is stored.  Removing the last member of a bucket
        leaves an empty bucket (count 0, zero averages); the guard
        lives in :meth:`repro.core.bucket.Bucket.with_deleted`.
        """
        target = np.asarray(rect.as_tuple(), dtype=np.float64)
        for i, row in enumerate(self._rows):
            if np.array_equal(row, target):
                del self._rows[i]
                break
        else:
            OBS.add("maintenance.delete_misses")
            return False
        self._modifications += 1
        self._epoch += 1
        OBS.add("maintenance.deletes")
        cx, cy = rect.center
        idx = self._find_bucket(cx, cy)
        if idx is not None:
            self.buckets[idx] = self.buckets[idx].with_deleted(rect)
        return True

    # ------------------------------------------------------------------
    # estimation + rebuild
    # ------------------------------------------------------------------
    def estimate(self, query: Rect) -> float:
        """Estimated |Q| from the (possibly drifted) bucket summary."""
        return float(sum(b.estimate(query) for b in self.buckets))

    def current_data(self) -> RectSet:
        """The live distribution (initial data plus modifications)."""
        if not self._rows:
            return RectSet.empty()
        return RectSet(np.vstack(self._rows), copy=False, validate=False)

    def refresh(self) -> None:
        """Rebuild the partitioning from the current data (ANALYZE).

        The partitioner supplies the new bucket *layout*; the
        per-bucket statistics are then recomputed exactly from the
        retained rows with :meth:`Bucket.from_members`, discarding
        whatever float error the incremental running averages (and
        their 0.0 clamps — see :meth:`Bucket.with_deleted`)
        accumulated since the last rebuild.  After a refresh the
        summary is bit-identical to one built fresh from
        :meth:`current_data`.
        """
        data = self.current_data()
        if len(data) == 0:
            self.buckets = []
        else:
            layout = [
                b.bbox for b in self._partitioner.partition(data)
            ]
            self.buckets = buckets_from_members(data, layout)
        self._modifications = 0
        self._uncovered = 0
        self._epoch += 1
        OBS.add("maintenance.refreshes")

    def replace_buckets(self, buckets: List[Bucket]) -> None:
        """Swap in a tuned bucket list as one atomic mutation.

        The feedback tuner's single entry point into the epoch
        machinery: the new list becomes visible together with exactly
        one epoch bump, so every derived consumer — the estimator
        snapshot, the kernel arrays, the bucket index, the query
        cache, the shard router — sees either the old or the new
        summary, never a half-tuned mix.  Structural drift serviced
        by the pass resets the modification counter; uncovered
        inserts survive (a tuning pass reshapes existing boxes, it
        does not extend coverage), so :attr:`needs_refresh` stays
        honest about layout drift.
        """
        self.buckets = list(buckets)
        self._modifications = 0
        self._epoch += 1
        OBS.add("maintenance.tunes")

"""Automatic selection of Min-Skew's region count and refinements.

The paper leaves this open twice: "finding the correct number of regions
which provides the least error is thus an interesting problem for
further exploration and part of our future work" (Section 5.5.3), and
"an interesting open question is to determine the optimal number of
refinements and/or regions" (Section 5.6.1).

This module implements the pragmatic answer a database system can
actually ship: **empirical tuning against a validation workload**.  For
each candidate configuration it builds the summary, estimates a
validation query set, scores it against ground truth, and keeps the
configuration with the least average relative error.

Ground truth can come from two places:

* ``truth="exact"`` — the exact counting oracle.  Fine offline (this is
  a one-time preprocessing decision), and what the experiments use.
* ``truth="sample"`` — counts on a random sample of the data, scaled.
  This is what a production system would do: it never scans the full
  table, and sampling error only perturbs the *comparison* between
  configurations, not the chosen summary itself.

The validation workload mirrors the paper's query model, mixing the
small and large query sizes whose tension causes the Figure 10(b)
anomaly in the first place.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..counting import ExactCountOracle, brute_force_counts
from ..estimators.bucket_estimator import BucketEstimator
from ..geometry import RectSet
from ..workload import range_queries
from .minskew import MinSkewPartitioner

TRUTH_MODES = ("exact", "sample")


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated configuration."""

    n_regions: int
    refinements: int
    error: float
    build_seconds: float


@dataclass
class TuningResult:
    """Outcome of a tuning run.

    ``partitioner`` is ready to use (or re-use on refreshed data);
    ``candidates`` records the full sweep for inspection.
    """

    n_regions: int
    refinements: int
    error: float
    candidates: List[TuningCandidate] = field(default_factory=list)

    def make_partitioner(self, n_buckets: int) -> MinSkewPartitioner:
        """A partitioner configured with the tuned parameters."""
        return MinSkewPartitioner(
            n_buckets,
            n_regions=self.n_regions,
            refinements=self.refinements,
        )


def tune_min_skew(
    data: RectSet,
    n_buckets: int,
    *,
    region_candidates: Sequence[int] = (1_000, 4_000, 10_000, 30_000),
    refinement_candidates: Sequence[int] = (0, 2, 4),
    qsizes: Sequence[float] = (0.05, 0.25),
    n_queries: int = 400,
    truth: str = "exact",
    truth_sample_size: int = 2_000,
    seed: int = 0,
) -> TuningResult:
    """Pick (n_regions, refinements) empirically for ``data``.

    Parameters
    ----------
    data:
        The input distribution.
    n_buckets:
        The bucket budget the tuned summary will use.
    region_candidates, refinement_candidates:
        The configuration grid to sweep.
    qsizes:
        Validation query sizes; the default mixes the small and large
        regimes whose trade-off the tuning must balance.
    n_queries:
        Validation queries *per qsize*.
    truth:
        ``"exact"`` (counting oracle) or ``"sample"`` (scaled counts on
        a ``truth_sample_size`` random sample — no full-data scan).
    seed:
        Controls the validation workload and the truth sample.

    Returns
    -------
    TuningResult
        The winning configuration, its validation error, and the full
        candidate table.
    """
    if len(data) == 0:
        raise ValueError("cannot tune on an empty distribution")
    if truth not in TRUTH_MODES:
        raise ValueError(
            f"unknown truth mode {truth!r}; choose from {TRUTH_MODES}"
        )
    if not region_candidates or not refinement_candidates:
        raise ValueError("candidate lists must be non-empty")

    workloads = [
        range_queries(data, q, n_queries, seed=seed + i)
        for i, q in enumerate(qsizes)
    ]
    all_queries = workloads[0]
    for extra in workloads[1:]:
        all_queries = all_queries.concat(extra)

    if truth == "exact":
        truth_counts = ExactCountOracle(data).counts(
            all_queries
        ).astype(np.float64)
    else:
        rng = np.random.default_rng(seed + 1_000)
        sample = data.sample(min(truth_sample_size, len(data)), rng)
        scale = len(data) / len(sample)
        truth_counts = brute_force_counts(sample, all_queries) * scale

    denominator = truth_counts.sum()
    if denominator <= 0:
        raise ValueError(
            "validation workload produced no results; cannot score"
        )

    candidates: List[TuningCandidate] = []
    best: Optional[
        Tuple[Tuple[float, int, int], TuningCandidate]
    ] = None
    for n_regions, refinements in itertools.product(
        region_candidates, refinement_candidates
    ):
        start = time.perf_counter()
        partitioner = MinSkewPartitioner(
            n_buckets, n_regions=n_regions, refinements=refinements
        )
        estimator = BucketEstimator.build(partitioner, data)
        build_seconds = time.perf_counter() - start
        estimates = estimator.estimate_many(all_queries)
        error = float(
            np.abs(truth_counts - estimates).sum() / denominator
        )
        candidate = TuningCandidate(
            n_regions, refinements, error, build_seconds
        )
        candidates.append(candidate)
        # prefer lower error; break ties towards cheaper configurations
        key = (error, n_regions, refinements)
        if best is None or key < best[0]:
            best = (key, candidate)

    assert best is not None
    winner = best[1]
    return TuningResult(
        n_regions=winner.n_regions,
        refinements=winner.refinements,
        error=winner.error,
        candidates=candidates,
    )

"""Spatial skew (Definition 4.1 of the paper).

"The spatial-skew s_i of a bucket B_i is the statistical variance of the
spatial densities of all points grouped within that bucket.  The
spatial-skew S of the entire grouping is the weighted sum of
spatial-skews of all the buckets: Σ n_i × s_i."

With the paper's grid reduction, the "points" of a bucket are its grid
cells and their densities, so ``n_i × s_i`` is exactly the sum of squared
deviations (SSE) of the bucket's cell densities.  These helpers measure
the skew of finished groupings; the construction-time O(1) version lives
in :class:`repro.grid.integral.BlockStats`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..geometry import Rect
from ..grid import DensityGrid


def variance(values: np.ndarray) -> float:
    """Population variance (the paper's footnote definition)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return float(values.var())


def bucket_skew(values: np.ndarray) -> float:
    """``n × variance`` of one bucket's densities (its SSE)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return float(values.size * values.var())


def grouping_skew(per_bucket_values: Sequence[np.ndarray]) -> float:
    """Spatial skew S of a grouping: Σ n_i × s_i over its buckets."""
    return float(sum(bucket_skew(v) for v in per_bucket_values))


def grid_block_values(
    grid: DensityGrid, block: Tuple[int, int, int, int]
) -> np.ndarray:
    """Flattened densities of the inclusive cell block
    ``(ix0, ix1, iy0, iy1)``."""
    ix0, ix1, iy0, iy1 = block
    return grid.densities[ix0:ix1 + 1, iy0:iy1 + 1].ravel()


def grouping_skew_on_grid(
    grid: DensityGrid, blocks: Sequence[Tuple[int, int, int, int]]
) -> float:
    """Spatial skew of a grid BSP given its buckets as cell blocks."""
    return grouping_skew([grid_block_values(grid, b) for b in blocks])


def grouping_skew_on_boxes(
    grid: DensityGrid, boxes: Sequence[Rect]
) -> float:
    """Spatial skew of arbitrary bucket boxes, measured on a grid.

    Each grid cell is attributed to the first box containing its center
    (cells covered by no box are ignored).  This evaluates non-BSP
    groupings — R-tree or Equi-* buckets — on the same skew scale as
    Min-Skew, which is how the test suite checks that Min-Skew actually
    achieves lower spatial skew than the baselines.
    """
    cell_cx = (
        grid.bounds.x1
        + (np.arange(grid.nx) + 0.5) * grid.cell_width
    )
    cell_cy = (
        grid.bounds.y1
        + (np.arange(grid.ny) + 0.5) * grid.cell_height
    )
    cx, cy = np.meshgrid(cell_cx, cell_cy, indexing="ij")
    assignment = np.full(grid.densities.shape, -1, dtype=np.int64)
    for idx, box in enumerate(boxes):
        unclaimed = assignment == -1
        inside = (
            (cx >= box.x1) & (cx <= box.x2)
            & (cy >= box.y1) & (cy <= box.y2)
        )
        assignment[unclaimed & inside] = idx

    values = []
    for idx in range(len(boxes)):
        mask = assignment == idx
        if mask.any():
            values.append(grid.densities[mask])
    return grouping_skew(values)

"""Progressive refinement of Min-Skew regions (paper Section 5.6).

Experiment 3 (Figure 10(b)) exposes the counter-intuitive effect: on
extremely skewed data, *more* regions can make *large* queries worse,
because fine regions over the skewed corners soak up the entire bucket
budget, starving the relatively uniform interior those large queries
span.  Progressive refinement fixes this by starting the construction
with coarse regions — so early buckets cover the whole space — and then
refining every region into four (2× per axis, densities recomputed from
the data) at equal bucket intervals, letting later buckets drill into the
high-skew areas.

The paper's Example 3: 2 refinements towards a 16 000-region grid with a
60-bucket budget start at 16 000/4² = 1 000 regions, build 20 buckets,
refine to 4 000, build 20 more, refine to 16 000, and finish the last 20.

The mechanism itself lives in
:class:`~repro.core.minskew.MinSkewPartitioner` (``refinements=r``);
this module provides the schedule arithmetic and a convenience
constructor, so experiments can reason about stages explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .minskew import MinSkewPartitioner


@dataclass(frozen=True)
class RefinementStage:
    """One stage of a progressive-refinement schedule."""

    stage: int
    n_regions: int  # approximate region count active during this stage
    cumulative_buckets: int  # bucket count when the stage ends


def refinement_schedule(
    n_buckets: int, n_regions: int, refinements: int
) -> List[RefinementStage]:
    """The paper's Example-3 schedule for given parameters.

    Stage ``s`` (0-based) runs on roughly ``n_regions / 4**(r - s)``
    regions and ends when ``(s + 1) * n_buckets / (r + 1)`` buckets
    exist; the final stage absorbs rounding so the total is exactly
    ``n_buckets``.
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be at least 1")
    if n_regions < 1:
        raise ValueError("n_regions must be at least 1")
    if refinements < 0:
        raise ValueError("refinements must be non-negative")
    n_stages = refinements + 1
    per_stage = max(1, n_buckets // n_stages)
    stages = []
    for s in range(n_stages):
        regions = max(1, n_regions // 4 ** (refinements - s))
        cumulative = n_buckets if s == n_stages - 1 \
            else min(n_buckets, per_stage * (s + 1))
        stages.append(RefinementStage(s, regions, cumulative))
    return stages


def progressive_min_skew(
    n_buckets: int,
    *,
    n_regions: int = 16_000,
    refinements: int = 2,
    split_policy: str = "marginal",
) -> MinSkewPartitioner:
    """A :class:`MinSkewPartitioner` configured for progressive refinement.

    Defaults follow the paper's Example 3 scale; the paper found the
    best refinement count to vary "from 2 to 6 depending on the query
    size and the input data" (Section 5.6.1).
    """
    return MinSkewPartitioner(
        n_buckets,
        n_regions=n_regions,
        refinements=refinements,
        split_policy=split_policy,
    )

"""The paper's primary contribution: spatial skew, the bucket model with
its uniformity-assumption formulas, the Min-Skew BSP partitioner, and
progressive refinement."""

from .bucket import (
    Bucket,
    BucketArrays,
    assign_by_center,
    buckets_from_assignment,
    buckets_from_members,
    estimate_many,
    estimate_many_arrays,
    owner_of_center,
)
from .maintenance import MaintainedHistogram
from .minskew import MinSkewPartitioner, MinSkewResult, SplitRecord
from .optimal import OptimalBSP
from .progressive import (
    RefinementStage,
    progressive_min_skew,
    refinement_schedule,
)
from .tuning import TuningCandidate, TuningResult, tune_min_skew
from .skew import (
    bucket_skew,
    grouping_skew,
    grouping_skew_on_boxes,
    grouping_skew_on_grid,
    variance,
)

__all__ = [
    "Bucket",
    "OptimalBSP",
    "MaintainedHistogram",
    "tune_min_skew",
    "TuningResult",
    "TuningCandidate",
    "estimate_many",
    "estimate_many_arrays",
    "BucketArrays",
    "assign_by_center",
    "buckets_from_assignment",
    "buckets_from_members",
    "owner_of_center",
    "MinSkewPartitioner",
    "MinSkewResult",
    "SplitRecord",
    "progressive_min_skew",
    "refinement_schedule",
    "RefinementStage",
    "variance",
    "bucket_skew",
    "grouping_skew",
    "grouping_skew_on_grid",
    "grouping_skew_on_boxes",
]

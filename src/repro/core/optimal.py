"""Optimal binary space partitionings by dynamic programming.

The paper motivates the greedy Min-Skew heuristic by noting that optimal
skew-minimising partitionings are NP-hard in general and that "the best
known algorithms for constructing [optimal] BSPs use dynamic programming
and have a complexity of at least O(N^2.5)" (Muthukrishnan, Poosala &
Suel, ICDT 1999) — infeasible for real grids.

This module implements that dynamic program for *small* grids so the
greedy construction can be measured against the true optimum:

    OPT(block, k) = SSE(block)                                if k = 1
                  = min over axis, split position, k₁ + k₂ = k of
                        OPT(left, k₁) + OPT(right, k₂)        otherwise

memoised over (block, k).  A g×g grid has Θ(g⁴) blocks, and each state
scans O(g · k) decompositions, so this is strictly a research/testing
tool — exactly the role the paper assigns it.  The ablation benchmark
uses it to show Min-Skew's greedy skew lands close to optimal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..grid import BlockStats, DensityGrid

Block = Tuple[int, int, int, int]  # inclusive (ix0, ix1, iy0, iy1)


class OptimalBSP:
    """Exact minimum-skew BSP over a density grid.

    Parameters
    ----------
    grid:
        The density grid to partition.  Keep it small (≲ 12×12 cells
        for interactive use); the state space grows with the fourth
        power of the resolution.
    max_buckets:
        Upper bound on the bucket budgets that will be queried; bounds
        the memo table.
    """

    def __init__(self, grid: DensityGrid, max_buckets: int = 32) -> None:
        if max_buckets < 1:
            raise ValueError("max_buckets must be at least 1")
        if grid.n_regions > 4_096:
            raise ValueError(
                "OptimalBSP is exponential in grid size; use at most "
                "a 64x64-cell budget (4096 regions)"
            )
        self.grid = grid
        self.max_buckets = max_buckets
        self._stats = BlockStats(grid.densities)
        # memo: (block, k) -> (cost, decision)
        # decision is None for k == 1, else (axis, offset, k_left)
        self._memo: Dict[
            Tuple[Block, int],
            Tuple[float, Optional[Tuple[int, int, int]]],
        ] = {}

    # ------------------------------------------------------------------
    def optimal_skew(self, n_buckets: int) -> float:
        """Minimum achievable spatial skew with ``n_buckets`` buckets."""
        block = (0, self.grid.nx - 1, 0, self.grid.ny - 1)
        return self._solve(block, self._clamp(block, n_buckets))[0]

    def optimal_blocks(self, n_buckets: int) -> List[Block]:
        """An optimal partitioning, as inclusive cell blocks."""
        root = (0, self.grid.nx - 1, 0, self.grid.ny - 1)
        result: List[Block] = []
        self._collect(root, self._clamp(root, n_buckets), result)
        return result

    # ------------------------------------------------------------------
    def _clamp(self, block: Block, k: int) -> int:
        if k < 1:
            raise ValueError("n_buckets must be at least 1")
        if k > self.max_buckets:
            raise ValueError(
                f"n_buckets {k} exceeds max_buckets={self.max_buckets}"
            )
        ix0, ix1, iy0, iy1 = block
        return min(k, (ix1 - ix0 + 1) * (iy1 - iy0 + 1))

    def _solve(
        self, block: Block, k: int
    ) -> Tuple[float, Optional[Tuple[int, int, int]]]:
        key = (block, k)
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        ix0, ix1, iy0, iy1 = block
        width = ix1 - ix0 + 1
        height = iy1 - iy0 + 1
        if k == 1 or width * height == 1:
            result = (self._stats.block_sse(*block), None)
            self._memo[key] = result
            return result

        best_cost = float("inf")
        best_decision: Optional[Tuple[int, int, int]] = None
        for axis, extent in ((0, width), (1, height)):
            for offset in range(1, extent):
                if axis == 0:
                    left: Block = (ix0, ix0 + offset - 1, iy0, iy1)
                    right: Block = (ix0 + offset, ix1, iy0, iy1)
                else:
                    left = (ix0, ix1, iy0, iy0 + offset - 1)
                    right = (ix0, ix1, iy0 + offset, iy1)
                left_cells = (left[1] - left[0] + 1) \
                    * (left[3] - left[2] + 1)
                right_cells = (right[1] - right[0] + 1) \
                    * (right[3] - right[2] + 1)
                k_left_lo = max(1, k - right_cells)
                k_left_hi = min(k - 1, left_cells)
                for k_left in range(k_left_lo, k_left_hi + 1):
                    cost = (
                        self._solve(left, k_left)[0]
                        + self._solve(right, k - k_left)[0]
                    )
                    if cost < best_cost:
                        best_cost = cost
                        best_decision = (axis, offset, k_left)

        result = (best_cost, best_decision)
        self._memo[key] = result
        return result

    def _collect(
        self, block: Block, k: int, out: List[Block]
    ) -> None:
        _, decision = self._solve(block, k)
        if decision is None:
            out.append(block)
            return
        axis, offset, k_left = decision
        ix0, ix1, iy0, iy1 = block
        if axis == 0:
            left: Block = (ix0, ix0 + offset - 1, iy0, iy1)
            right: Block = (ix0 + offset, ix1, iy0, iy1)
        else:
            left = (ix0, ix1, iy0, iy0 + offset - 1)
            right = (ix0, ix1, iy0 + offset, iy1)
        self._collect(left, k_left, out)
        self._collect(right, k - k_left, out)

"""The fractal (parametric) technique of Belussi & Faloutsos, VLDB 1995.

The paper's comparison baseline: "spatial data can be described using
fractals having a non-integer fractal dimension ... selectivity for such
point sets can be described using a power law with the correlation
fractal dimension as the exponent.  For comparison, we extended this
technique to rectangle data by using the centroids of the rectangles as
representatives."

The correlation dimension D₂ is measured by box counting: impose grids of
side r over the data, compute S₂(r) = Σᵢ pᵢ² (pᵢ the fraction of points
in box i), and fit the slope of log S₂ against log r — for a self-similar
set, S₂(r) ∝ r^D₂.  The selectivity of a query of side s centered on a
data point then follows the power law |Q| ≈ N · (s / L)^D₂ with L the
input extent.  Note the "biased query" model — queries centered on data
points — is exactly the paper's workload (Section 5.2 draws query centers
from input rectangle centers).

The SIGMOD'99 experiments found this technique "close to being the least
effective ... consistently close to 90 %" error on rectangle data; the
reproduction preserves that behaviour (it is a two-parameter summary, so
this is expected, and our benchmarks assert only its qualitative rank).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import numpy.typing as npt

from ..geometry import Rect, RectSet, require_nonempty
from ..grid import DensityGrid
from .base import SelectivityEstimator

#: Words of summary state: the input MBR (4), N (1), D₂ (1), and the
#: average extents used for query extension (2).
FRACTAL_WORDS = 8


def correlation_dimension(
    points: npt.NDArray[np.float64],
    bounds: Rect,
    *,
    min_level: int = 1,
    max_level: int = 8,
) -> Tuple[
    float, npt.NDArray[np.float64], npt.NDArray[np.float64]
]:
    """Box-counting estimate of the correlation fractal dimension D₂.

    Parameters
    ----------
    points:
        ``(N, 2)`` point array.
    bounds:
        The space the grids tile.
    min_level, max_level:
        Grid levels used: level ℓ imposes a ``2^ℓ × 2^ℓ`` grid, i.e. a
        box side of ``2^-ℓ`` relative to the bounds.

    Returns
    -------
    (d2, log_r, log_s2):
        The fitted dimension and the log–log points it was fitted to
        (useful for diagnostics and tests).
    """
    if points.shape[0] == 0:
        raise ValueError("cannot measure the dimension of no points")
    if min_level < 0 or max_level < min_level:
        raise ValueError("invalid level range")
    n = points.shape[0]
    # Fit only over the linear region of the log–log plot: once boxes
    # hold ≪ 1 point each, S₂ flattens at 1/N (every occupied box holds
    # a single point) and including those scales biases D₂ low.  Cap
    # the finest level so boxes average ≳ a few points.
    saturation_level = max(min_level + 1,
                           int(np.log(max(n, 4)) / np.log(4.0)) - 1)
    max_level = min(max_level, saturation_level)
    log_r = []
    log_s2 = []
    for level in range(min_level, max_level + 1):
        g = 2 ** level
        grid = DensityGrid.from_points(points, g, g, bounds=bounds)
        p = grid.densities / n
        s2 = float((p * p).sum())
        if s2 <= 0.0:
            continue
        log_r.append(-level)  # log2 of relative box side 2^-level
        log_s2.append(np.log2(s2))
    log_r_arr = np.asarray(log_r, dtype=np.float64)
    log_s2_arr = np.asarray(log_s2, dtype=np.float64)
    if log_r_arr.size < 2:
        # One usable scale (e.g. a single distinct point): treat the
        # set as zero-dimensional.
        return 0.0, log_r_arr, log_s2_arr
    slope, _ = np.polyfit(log_r_arr, log_s2_arr, 1)
    # A finite point set flattens out at fine scales (every point alone
    # in its box), so the raw slope can dip below 0; clamp into the
    # geometrically meaningful range for 2-D data.
    d2 = float(np.clip(slope, 0.0, 2.0))
    return d2, log_r_arr, log_s2_arr


class FractalEstimator(SelectivityEstimator):
    """Power-law selectivity from the correlation dimension."""

    name = "Fractal"

    def __init__(
        self,
        rects: RectSet,
        *,
        max_level: int = 8,
        bounds: Optional[Rect] = None,
    ) -> None:
        require_nonempty(len(rects))
        self.n_input = len(rects)
        self.bounds = bounds if bounds is not None else rects.mbr()
        self.avg_width = rects.avg_width()
        self.avg_height = rects.avg_height()
        centroids = rects.centers()
        self.d2, self._log_r, self._log_s2 = correlation_dimension(
            centroids, self.bounds, max_level=max_level
        )
        # reference extent: geometric mean of the MBR sides
        self._extent = float(
            np.sqrt(max(self.bounds.width, 1e-300)
                    * max(self.bounds.height, 1e-300))
        )

    def estimate(self, query: Rect) -> float:
        # A batch of one through the same numpy kernel as the batch
        # path: ``ratio ** d2`` must round identically on both paths
        # (C ``pow`` via Python and via a numpy array loop can differ
        # in the last ulp), and the differential serving suite holds
        # the two paths to exact float equality.
        qrow = np.array(
            [[query.x1, query.y1, query.x2, query.y2]],
            dtype=np.float64,
        )
        return float(self._power_law(qrow)[0])

    def _power_law(
        self, qcoords: npt.NDArray[np.float64]
    ) -> npt.NDArray[np.float64]:
        """The extended-query power law over an ``(M, 4)`` block."""
        widths = qcoords[:, 2] - qcoords[:, 0]
        heights = qcoords[:, 3] - qcoords[:, 1]
        w = np.minimum(widths + self.avg_width, self.bounds.width)
        h = np.minimum(heights + self.avg_height, self.bounds.height)
        side = np.sqrt(np.clip(w, 0.0, None) * np.clip(h, 0.0, None))
        ratio = np.minimum(side / self._extent, 1.0)
        est = self.n_input * ratio ** self.d2
        return np.where(side > 0.0, est, 0.0)

    def _estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        return self._power_law(queries.coords)

    def size_words(self) -> int:
        return FRACTAL_WORDS

"""Selectivity estimators: the shared interface, the generic bucket
estimator, and the non-bucket baselines (Uniform, Sample, Fractal) plus
an exact oracle wrapper."""

from .base import SelectivityEstimator
from .bucket_estimator import WORDS_PER_BUCKET, BucketEstimator
from .exact import ExactEstimator
from .fractal import FractalEstimator, correlation_dimension
from .maintained import MaintainedEstimator
from .sampling import WORDS_PER_SAMPLE, SampleEstimator, reservoir_sample
from .uniform import UniformEstimator

__all__ = [
    "SelectivityEstimator",
    "BucketEstimator",
    "MaintainedEstimator",
    "WORDS_PER_BUCKET",
    "UniformEstimator",
    "SampleEstimator",
    "WORDS_PER_SAMPLE",
    "reservoir_sample",
    "FractalEstimator",
    "correlation_dimension",
    "ExactEstimator",
]

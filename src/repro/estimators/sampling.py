"""The Sample technique (paper Section 5.3).

"We collect a sample of the input rectangles.  Given a query, we compute
the selectivity of the query on the sample.  We then scale the result
appropriately ...: if the size of the sample is n, the input size is N,
and the number of sample rectangles that satisfy the given predicate is
m, then the estimated result size is m × N / n."

Space accounting (Section 5.4): a sample rectangle costs four words (its
bounding box), i.e. half a bucket; the paper deliberately grants Sample
*twice* its fair space, which :mod:`repro.eval.space` reproduces.

The sample is drawn by reservoir sampling so the constructor works for
streams as well; for in-memory :class:`RectSet` inputs a vectorised
without-replacement draw gives the identical distribution and is used
directly.
"""

from __future__ import annotations

from typing import Iterable, List, Union

import numpy as np
import numpy.typing as npt

from ..counting import brute_force_counts
from ..geometry import Rect, RectSet, require_nonempty
from ..obs import OBS
from .base import SelectivityEstimator

#: Accepted randomness sources: an explicit seed or a threaded
#: Generator.  ``None`` is deliberately not accepted — an unseeded draw
#: would make the estimator non-reproducible run to run.
SeedLike = Union[int, np.random.Generator]

#: Words of summary state per sampled rectangle (its bounding box).
WORDS_PER_SAMPLE = 4


def reservoir_sample(
    stream: Iterable[Rect], k: int, rng: np.random.Generator
) -> List[Rect]:
    """Classic reservoir sampling: a uniform k-subset of a stream.

    Provided for completeness (one-pass construction over data that does
    not fit in memory, matching how a real system would sample).
    """
    if k < 0:
        raise ValueError("sample size must be non-negative")
    reservoir: List[Rect] = []
    for i, rect in enumerate(stream):
        if i < k:
            reservoir.append(rect)
        else:
            j = int(rng.integers(0, i + 1))
            if j < k:
                reservoir[j] = rect
    return reservoir


class SampleEstimator(SelectivityEstimator):
    """Scaled count over a uniform random sample.

    Parameters
    ----------
    rects:
        The input distribution T.
    sample_size:
        Number of rectangles to keep.
    seed:
        RNG seed or threaded ``numpy.random.Generator`` for the draw.
        Defaults to a fixed seed so two runs build the same sample;
        pass a Generator to share a stream across components.
    """

    name = "Sample"

    def __init__(
        self,
        rects: RectSet,
        sample_size: int,
        *,
        seed: SeedLike = 0,
    ) -> None:
        require_nonempty(len(rects))
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        rng = seed if isinstance(seed, np.random.Generator) \
            else np.random.default_rng(seed)
        self.n_input = len(rects)
        self.sample = rects.sample(sample_size, rng)
        self._scale = self.n_input / len(self.sample)

    def estimate(self, query: Rect) -> float:
        return self.sample.count_intersecting(query) * self._scale

    def _estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        if OBS.enabled:
            OBS.add("estimator.sample_comparisons",
                    len(self.sample) * len(queries))
        return brute_force_counts(self.sample, queries) * self._scale

    def size_words(self) -> int:
        return WORDS_PER_SAMPLE * len(self.sample)

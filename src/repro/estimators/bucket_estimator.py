"""Estimator over any bucket grouping.

This is the "technique for using the resulting set of buckets to estimate
the result sizes" of paper Section 3.2: selectivity estimation reduces to
the individual buckets, each answered with the Section 3.1 uniformity
formulas, and the per-bucket contributions are summed.

Both query paths run the same vectorised kernel over columnar bucket
state (:class:`repro.core.bucket.BucketArrays`, precomputed once at
construction): the batch path evaluates a ``(Q, B)`` broadcast block,
and the scalar path evaluates the identical block with ``Q = 1``, so
scalar and batch answers are bit-identical by construction.

A bucket *index* (any object with a ``candidates(query)`` method
returning bucket positions, e.g. :class:`repro.serving.BucketIndex`)
can be attached to accelerate scalar probing from O(buckets) to near
O(answer); the candidate set is a superset of every contributing
bucket, so pruning never changes which buckets matter.  The pruned
path evaluates the kernel over the candidates only but scatters the
terms into a full-width row before reducing, so even the partial-sum
grouping matches the linear scan and indexed probing is bit-identical
to it (the index property suite asserts exact equality).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

import numpy as np
import numpy.typing as npt

from ..core.bucket import Bucket, BucketArrays, estimate_many_arrays
from ..geometry import Rect, RectSet, require_nonempty
from ..obs import OBS
from ..partitioners.base import Partitioner
from .base import SelectivityEstimator

#: Words of summary state per bucket (Section 5.4): four for the
#: bounding box, one each for average density, count, average width and
#: average height.
WORDS_PER_BUCKET = 8


class BucketProbe(Protocol):
    """Anything that can name the buckets a query might touch."""

    def candidates(self, query: Rect) -> "npt.NDArray[np.int64]":
        """Positions of every bucket possibly contributing to
        ``query`` (a superset of the truly contributing set)."""
        ...


class BucketEstimator(SelectivityEstimator):
    """Sums the uniformity-assumption estimate over a bucket list."""

    def __init__(
        self, buckets: Sequence[Bucket], name: str = "buckets"
    ) -> None:
        require_nonempty(len(buckets), what="bucket list")
        self.buckets: List[Bucket] = list(buckets)
        self.name = name
        self._arrays = BucketArrays(self.buckets)
        self._index: Optional[BucketProbe] = None

    @classmethod
    def build(
        cls,
        partitioner: Partitioner,
        rects: RectSet,
        *,
        bounds: Optional[Rect] = None,
    ) -> "BucketEstimator":
        """Partition ``rects`` and wrap the result."""
        with OBS.timer(f"partition.{partitioner.name}"):
            buckets = partitioner.partition(rects, bounds=bounds)
        return cls(buckets, name=partitioner.name)

    # ------------------------------------------------------------------
    # staleness hooks
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Version of the bucket summary this estimator serves.

        A plain :class:`BucketEstimator` owns its bucket list, which
        never changes after construction, so the epoch is a constant 0.
        Live adapters (:class:`repro.estimators.maintained.\
MaintainedEstimator`) override this with their source histogram's
        monotonic epoch; the serving engine compares it against the
        epoch it last observed to decide when caches and indexes must
        be invalidated.
        """
        return 0

    def sync(self) -> bool:
        """Rebuild derived state if the source summary has moved.

        Returns True when a rebuild happened (so callers holding state
        derived from :attr:`buckets` know to rebuild too).  The static
        base class is never stale.  Both query paths call this first,
        which is what makes a bare estimator — no serving engine
        involved — safe to query mid-maintenance.
        """
        return False

    # ------------------------------------------------------------------
    # index hook
    # ------------------------------------------------------------------
    def attach_index(self, index: Optional[BucketProbe]) -> None:
        """Install (or with ``None`` remove) a bucket probe that the
        scalar path uses to prune the bucket scan."""
        self._index = index

    @property
    def index(self) -> Optional[BucketProbe]:
        return self._index

    # ------------------------------------------------------------------
    # query paths
    # ------------------------------------------------------------------
    def estimate(self, query: Rect) -> float:
        self.sync()
        qrow = np.array(
            [[query.x1, query.y1, query.x2, query.y2]],
            dtype=np.float64,
        )
        arrays = self._arrays
        if self._index is not None:
            chosen = self._index.candidates(query)
            if OBS.enabled:
                OBS.add("serving.index.probes")
                OBS.add("serving.index.candidates", len(chosen))
            if len(chosen) == 0:
                return 0.0
            if len(chosen) < arrays.n:
                # evaluate the formula over the candidates only, but
                # reduce over a full-width row: numpy groups partial
                # sums by array length, so summing the short candidate
                # vector directly would round differently in the last
                # ulp than the unpruned (and batch-path) scan
                terms = np.zeros((1, arrays.n), dtype=np.float64)
                terms[0, chosen] = \
                    arrays.select(chosen).estimate_terms(qrow)[0]
                return float(terms.sum(axis=1)[0])
        return float(arrays.estimate_block(qrow)[0])

    def _estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        self.sync()
        if OBS.enabled:
            OBS.add("estimator.buckets_inspected",
                    len(self.buckets) * len(queries))
        return estimate_many_arrays(self._arrays, queries)

    def size_words(self) -> int:
        return WORDS_PER_BUCKET * len(self.buckets)

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    def total_count(self) -> int:
        """Sum of bucket counts (= N when the grouping partitions T)."""
        return sum(b.count for b in self.buckets)

"""Estimator over any bucket grouping.

This is the "technique for using the resulting set of buckets to estimate
the result sizes" of paper Section 3.2: selectivity estimation reduces to
the individual buckets, each answered with the Section 3.1 uniformity
formulas, and the per-bucket contributions are summed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.bucket import Bucket, estimate_many
from ..geometry import Rect, RectSet, require_nonempty
from ..obs import OBS
from ..partitioners.base import Partitioner
from .base import SelectivityEstimator

#: Words of summary state per bucket (Section 5.4): four for the
#: bounding box, one each for average density, count, average width and
#: average height.
WORDS_PER_BUCKET = 8


class BucketEstimator(SelectivityEstimator):
    """Sums the uniformity-assumption estimate over a bucket list."""

    def __init__(
        self, buckets: Sequence[Bucket], name: str = "buckets"
    ) -> None:
        require_nonempty(len(buckets), what="bucket list")
        self.buckets: List[Bucket] = list(buckets)
        self.name = name

    @classmethod
    def build(
        cls,
        partitioner: Partitioner,
        rects: RectSet,
        *,
        bounds: Optional[Rect] = None,
    ) -> "BucketEstimator":
        """Partition ``rects`` and wrap the result."""
        with OBS.timer(f"partition.{partitioner.name}"):
            buckets = partitioner.partition(rects, bounds=bounds)
        return cls(buckets, name=partitioner.name)

    def estimate(self, query: Rect) -> float:
        return float(sum(b.estimate(query) for b in self.buckets))

    def estimate_many(self, queries: RectSet) -> np.ndarray:
        if OBS.enabled:
            OBS.add("estimator.batch_queries", len(queries))
            OBS.add("estimator.buckets_inspected",
                    len(self.buckets) * len(queries))
            OBS.observe("estimator.batch_size", len(queries))
        with OBS.timer(f"estimate.{self.name}"):
            return estimate_many(self.buckets, queries)

    def size_words(self) -> int:
        return WORDS_PER_BUCKET * len(self.buckets)

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    def total_count(self) -> int:
        """Sum of bucket counts (= N when the grouping partitions T)."""
        return sum(b.count for b in self.buckets)

"""Serve a live :class:`~repro.core.maintenance.MaintainedHistogram`.

:class:`MaintainedEstimator` is the adapter between the maintenance
layer (which mutates bucket statistics in place, epoch-stamping every
accepted change) and the estimator/serving stack (which assumes an
immutable bucket list it can snapshot into columnar
:class:`~repro.core.bucket.BucketArrays`).  The adapter is *lazily*
consistent: it records the histogram epoch its snapshot was built from
and rebuilds on the first query after the epoch moves — never during a
maintenance burst, and never twice for one burst.

Consistency has two halves:

* **local** — both query paths re-snapshot before answering (via the
  :meth:`sync` hook that :class:`~repro.estimators.BucketEstimator`
  calls first thing), so a bare adapter never serves stale statistics;
* **shared** — any attached bucket index is *dropped* on sync rather
  than rebuilt, because the adapter does not know how its owner built
  it.  Owners that want to keep index acceleration
  (:class:`repro.serving.BatchServingEngine`) watch :attr:`epoch`
  themselves and re-attach a fresh index; see the engine's
  revalidation step.

A feedback tuning pass (:class:`repro.tuning.FeedbackTuner`) is, from
this adapter's point of view, just another mutation: it replaces the
histogram's bucket list atomically with exactly one epoch bump, so the
first query afterwards re-snapshots the tuned layout here exactly as a
maintenance insert would — no tuning-specific hook exists or is
needed, and a half-tuned snapshot can never be observed.
"""

from __future__ import annotations

from ..core.bucket import BucketArrays
from ..core.maintenance import MaintainedHistogram
from ..obs import OBS
from .bucket_estimator import BucketEstimator


class MaintainedEstimator(BucketEstimator):
    """A :class:`BucketEstimator` view over a live histogram.

    The histogram stays the single source of truth: this class never
    copies rows, only the bucket summaries, and only when queried
    after the histogram's epoch has moved.
    """

    def __init__(
        self,
        histogram: MaintainedHistogram,
        name: str = "Maintained",
    ) -> None:
        self._histogram = histogram
        super().__init__(list(histogram.buckets), name=name)
        self._synced_epoch = histogram.epoch

    @property
    def histogram(self) -> MaintainedHistogram:
        return self._histogram

    @property
    def epoch(self) -> int:
        """The source histogram's epoch (moves under maintenance)."""
        return self._histogram.epoch

    @property
    def synced_epoch(self) -> int:
        """Epoch the current kernel snapshot was built from."""
        return self._synced_epoch

    def sync(self) -> bool:
        """Re-snapshot the bucket list if the histogram has moved.

        Drops any attached index (it was built over the previous
        snapshot; serving through it would be the exact stale-pruning
        bug this layer exists to prevent).  Returns True when a
        rebuild happened.
        """
        current = self._histogram.epoch
        if current == self._synced_epoch:
            return False
        self.buckets = list(self._histogram.buckets)
        self._arrays = BucketArrays(self.buckets)
        self._index = None
        self._synced_epoch = current
        if OBS.enabled:
            OBS.add("serving.epoch.estimator_rebuilds")
        return True

"""Exact "estimator": the ground truth behind the estimator interface.

Not a technique from the paper — an oracle wrapper so examples and tests
can treat the true result sizes as just another estimator (e.g. the query
optimizer example compares plans under estimated vs. true selectivities).
Its ``size_words`` is the full data footprint, which is exactly why real
systems cannot use it (Section 2: scanning or indexing per optimisation
call is "too expensive to be useful").
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..counting import ExactCountOracle
from ..geometry import Rect, RectSet
from .base import SelectivityEstimator
from .sampling import WORDS_PER_SAMPLE


class ExactEstimator(SelectivityEstimator):
    """Answers every query exactly via the counting oracle."""

    name = "Exact"

    def __init__(self, rects: RectSet) -> None:
        self._rects = rects
        self._oracle = ExactCountOracle(rects)

    def estimate(self, query: Rect) -> float:
        return float(self._rects.count_intersecting(query))

    def _estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        return self._oracle.counts(queries).astype(np.float64)

    def size_words(self) -> int:
        return WORDS_PER_SAMPLE * len(self._rects)

"""Selectivity estimator interface.

Every technique in the paper's evaluation — Uniform, Sample, the fractal
method, and all four bucket-based partitionings — is exposed through this
one interface, so the experiment runner can sweep them uniformly.

Two query entry points exist:

* :meth:`SelectivityEstimator.estimate` answers one :class:`Rect`;
* :meth:`SelectivityEstimator.estimate_batch` answers a whole
  :class:`RectSet` through the technique's vectorised kernel.

Both validate their input through :mod:`repro.geometry.validate` — a
scalar query cannot even be constructed invalid (the :class:`Rect`
constructor checks), and the batch path re-checks the coordinate block
so a ``RectSet`` built with ``validate=False`` cannot smuggle NaN or
inverted rectangles into a kernel.  Subclasses implement the protected
:meth:`SelectivityEstimator._estimate_batch` hook; the public wrapper
owns validation and observability, so the ``estimate.<name>`` timer
fires exactly once per batch no matter the technique.

``estimate_many`` is the historical name of the batch path and is kept
as an alias.

An estimator reports its summary size in *words*
(:meth:`SelectivityEstimator.size_words`), the unit of the paper's
Section 5.4 space accounting; :mod:`repro.eval.space` converts between
word budgets, bucket counts, and sample sizes.
"""

from __future__ import annotations

import abc

import numpy as np
import numpy.typing as npt

from ..geometry import Rect, RectSet, validate_coords_array
from ..obs import OBS


class SelectivityEstimator(abc.ABC):
    """Answers result-size queries from a compact data summary."""

    #: Technique name used in reports ("Min-Skew", "Sample", ...).
    name: str = "estimator"

    @abc.abstractmethod
    def estimate(self, query: Rect) -> float:
        """Estimated |Q|: number of input rectangles intersecting
        ``query``.  Never negative; point queries are degenerate
        rectangles."""

    def estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        """Vectorised :meth:`estimate` over a whole workload.

        Validates the query block (NaN/inf and inverted rectangles
        raise :class:`~repro.errors.GeometryError` before any kernel
        runs), then dispatches to the technique's batch kernel.  The
        result is elementwise bit-identical to the scalar loop
        ``[self.estimate(q) for q in queries]``, which the serving
        differential suite asserts.
        """
        validate_coords_array(queries.coords, what="query")
        if OBS.enabled:
            OBS.add("estimator.batch_queries", len(queries))
            OBS.observe("estimator.batch_size", len(queries))
        with OBS.timer(f"estimate.{self.name}"):
            return self._estimate_batch(queries)

    def _estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        """Batch kernel; subclasses override with a vectorised path."""
        return np.array(
            [self.estimate(q) for q in queries], dtype=np.float64
        )

    def estimate_many(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        """Alias of :meth:`estimate_batch` (the original batch name)."""
        return self.estimate_batch(queries)

    @abc.abstractmethod
    def size_words(self) -> int:
        """Summary footprint in words (Section 5.4 accounting)."""

    def selectivity(self, query: Rect, n_input: int) -> float:
        """Estimated selectivity |Q| / N."""
        if n_input <= 0:
            raise ValueError("n_input must be positive")
        return self.estimate(query) / n_input

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

"""Selectivity estimator interface.

Every technique in the paper's evaluation — Uniform, Sample, the fractal
method, and all four bucket-based partitionings — is exposed through this
one interface, so the experiment runner can sweep them uniformly.

An estimator reports its summary size in *words*
(:meth:`SelectivityEstimator.size_words`), the unit of the paper's
Section 5.4 space accounting; :mod:`repro.eval.space` converts between
word budgets, bucket counts, and sample sizes.
"""

from __future__ import annotations

import abc

import numpy as np

from ..geometry import Rect, RectSet
from ..obs import OBS


class SelectivityEstimator(abc.ABC):
    """Answers result-size queries from a compact data summary."""

    #: Technique name used in reports ("Min-Skew", "Sample", ...).
    name: str = "estimator"

    @abc.abstractmethod
    def estimate(self, query: Rect) -> float:
        """Estimated |Q|: number of input rectangles intersecting
        ``query``.  Never negative; point queries are degenerate
        rectangles."""

    def estimate_many(self, queries: RectSet) -> np.ndarray:
        """Vectorised :meth:`estimate`; subclasses override when they
        can batch the computation."""
        if OBS.enabled:
            OBS.add("estimator.batch_queries", len(queries))
            OBS.observe("estimator.batch_size", len(queries))
        with OBS.timer(f"estimate.{self.name}"):
            return np.array(
                [self.estimate(q) for q in queries], dtype=np.float64
            )

    @abc.abstractmethod
    def size_words(self) -> int:
        """Summary footprint in words (Section 5.4 accounting)."""

    def selectivity(self, query: Rect, n_input: int) -> float:
        """Estimated selectivity |Q| / N."""
        if n_input <= 0:
            raise ValueError("n_input must be positive")
        return self.estimate(query) / n_input

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

"""The Uniform technique (paper Sections 3.1 and 5.3).

A single-bucket approximation: assume the input rectangles are of
identical (average) width and height and uniformly placed within the
dataset MBR.  Point queries get TA / Area(T) — the mean number of
rectangles covering a point — and range queries get the extended-area
formula; both fall out of the shared bucket formula with one bucket.

The paper reports 57–80 % error for Uniform on NJ Road: "real-life
spatial data is inherently skewed and thus cannot be captured by a
trivial single bucket approximation."
"""

from __future__ import annotations

from ..core.bucket import Bucket
from ..geometry import RectSet, require_nonempty
from .bucket_estimator import BucketEstimator


class UniformEstimator(BucketEstimator):
    """One bucket over the whole input MBR."""

    def __init__(self, rects: RectSet) -> None:
        require_nonempty(len(rects))
        bucket = Bucket.from_members(rects.mbr(), rects)
        super().__init__([bucket], name="Uniform")

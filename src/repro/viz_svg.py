"""SVG rendering of datasets, density surfaces, and partitionings.

The ASCII renders in :mod:`repro.viz` are for terminals; this module
writes standalone SVG files for reports and papers — the closest
equivalent of the paper's Figures 1–7 this repository can produce
without a plotting dependency.  The SVG is hand-assembled (no external
libraries) and deliberately simple: rectangles, lines, and text.

Typical use::

    from repro.viz_svg import partition_svg, density_svg
    svg = partition_svg(buckets, data.mbr(), title="Min-Skew, 50 buckets")
    Path("fig7.svg").write_text(svg)
"""

from __future__ import annotations

from typing import List, Optional, Sequence
from xml.sax.saxutils import escape

import numpy as np

from .core.bucket import Bucket
from .geometry import Rect, RectSet
from .grid import DensityGrid

#: Canvas size in pixels (content area; margins added around it).
DEFAULT_CANVAS = 480
MARGIN = 24
TITLE_HEIGHT = 22


class _SvgCanvas:
    """Accumulates SVG elements in data coordinates mapped to pixels."""

    def __init__(
        self, bounds: Rect, size: int, title: Optional[str]
    ) -> None:
        if bounds.area <= 0:
            raise ValueError("cannot render degenerate bounds")
        self.bounds = bounds
        aspect = bounds.height / bounds.width
        self.content_w = size
        self.content_h = max(1, int(round(size * aspect)))
        self.title = title
        self.header = TITLE_HEIGHT if title else 0
        self.width = self.content_w + 2 * MARGIN
        self.height = self.content_h + 2 * MARGIN + self.header
        self._elements: List[str] = []

    # data -> pixel coordinates (y flipped: SVG y grows downward)
    def px(self, x: float) -> float:
        t = (x - self.bounds.x1) / self.bounds.width
        return MARGIN + t * self.content_w

    def py(self, y: float) -> float:
        t = (y - self.bounds.y1) / self.bounds.height
        return MARGIN + self.header + (1.0 - t) * self.content_h

    def add_rect(
        self,
        rect: Rect,
        *,
        fill: str = "none",
        stroke: str = "#333333",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        x = self.px(rect.x1)
        y = self.py(rect.y2)
        w = max(self.px(rect.x2) - x, 0.5)
        h = max(self.py(rect.y1) - y, 0.5)
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def add_label(self, x: float, y: float, text: str,
                  size: int = 10) -> None:
        self._elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="sans-serif" fill="#222222">'
            f"{escape(text)}</text>"
        )

    def render(self) -> str:
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>',
        ]
        if self.title:
            parts.append(
                f'<text x="{MARGIN}" y="{MARGIN - 8 + TITLE_HEIGHT}" '
                f'font-size="13" font-family="sans-serif" '
                f'font-weight="bold" fill="#111111">'
                f"{escape(self.title)}</text>"
            )
        # frame around the content area
        frame = Rect(self.bounds.x1, self.bounds.y1, self.bounds.x2,
                     self.bounds.y2)
        parts.extend(self._elements)
        x = self.px(frame.x1)
        y = self.py(frame.y2)
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" '
            f'width="{self.content_w}" height="{self.content_h}" '
            f'fill="none" stroke="#000000" stroke-width="1"/>'
        )
        parts.append("</svg>")
        return "\n".join(parts)


def _heat_color(value: float) -> str:
    """Map a normalised density in [0, 1] to a white→red hex colour."""
    v = float(np.clip(value, 0.0, 1.0))
    # white (255,255,255) -> dark red (165, 0, 38)
    r = int(round(255 - v * (255 - 165)))
    g = int(round(255 - v * 255))
    b = int(round(255 - v * (255 - 38)))
    return f"#{r:02x}{g:02x}{b:02x}"


def dataset_svg(
    rects: RectSet,
    *,
    size: int = DEFAULT_CANVAS,
    title: Optional[str] = None,
    max_draw: int = 20_000,
    seed: int = 0,
) -> str:
    """Draw the rectangles themselves (Figure 1 style).

    At most ``max_draw`` rectangles are drawn (a random subset beyond
    that), since SVG viewers struggle past a few tens of thousands of
    elements.
    """
    if len(rects) == 0:
        raise ValueError("nothing to draw")
    bounds = rects.mbr()
    canvas = _SvgCanvas(bounds, size, title)
    if len(rects) > max_draw:
        rng = np.random.default_rng(seed)
        subset = rects.sample(max_draw, rng)
    else:
        subset = rects
    for rect in subset:
        canvas.add_rect(rect, stroke="#1f77b4", stroke_width=0.4,
                        opacity=0.5)
    return canvas.render()


def density_svg(
    grid: DensityGrid,
    *,
    size: int = DEFAULT_CANVAS,
    title: Optional[str] = None,
) -> str:
    """Heat-map of a density grid (Figure 5 style)."""
    canvas = _SvgCanvas(grid.bounds, size, title)
    top = grid.densities.max()
    if top <= 0:
        top = 1.0
    for ix in range(grid.nx):
        for iy in range(grid.ny):
            value = grid.densities[ix, iy] / top
            if value <= 0:
                continue
            canvas.add_rect(
                grid.cell_rect(ix, iy),
                fill=_heat_color(value),
                stroke="none",
                stroke_width=0.0,
            )
    return canvas.render()


def partition_svg(
    buckets: Sequence[Bucket],
    bounds: Optional[Rect] = None,
    *,
    size: int = DEFAULT_CANVAS,
    title: Optional[str] = None,
    shade_by_count: bool = True,
    annotate: bool = False,
) -> str:
    """Bucket-layout figure (Figures 2/3/4/7 style).

    Bucket boxes are outlined; with ``shade_by_count`` the fill encodes
    each bucket's rectangle count on the heat scale, which makes the
    density-following layouts immediately visible.  ``annotate`` adds
    the count as a small label (useful below ~60 buckets).
    """
    if not buckets:
        raise ValueError("no buckets to draw")
    if bounds is None:
        bounds = Rect(
            min(b.bbox.x1 for b in buckets),
            min(b.bbox.y1 for b in buckets),
            max(b.bbox.x2 for b in buckets),
            max(b.bbox.y2 for b in buckets),
        )
    canvas = _SvgCanvas(bounds, size, title)
    top = max((b.count for b in buckets), default=1) or 1
    for b in buckets:
        fill = (
            _heat_color(0.85 * b.count / top) if shade_by_count
            else "none"
        )
        canvas.add_rect(b.bbox, fill=fill, stroke="#333333",
                        stroke_width=1.0, opacity=0.9)
        if annotate and b.count > 0:
            cx, cy = b.bbox.center
            canvas.add_label(canvas.px(cx) - 8, canvas.py(cy) + 3,
                             str(b.count), size=8)
    return canvas.render()
